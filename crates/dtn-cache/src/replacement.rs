//! Cache-replacement policies — the four lines of Fig. 12.
//!
//! The intentional caching scheme can run with its native
//! **utility-knapsack** replacement (contact-time exchange solving
//! Eq. 7 via Algorithm 1) or with one of the traditional evict-on-insert
//! policies the paper compares against: **FIFO**, **LRU** and
//! **Greedy-Dual-Size** \[6\].
//!
//! This module implements the evict-on-insert side: a
//! [`NodeCacheMeta`] keeps per-item bookkeeping (insertion time, last
//! use, GDS credit) and [`make_room`] frees space according to the
//! selected policy.

use std::collections::HashMap;

use dtn_core::ids::DataId;
use dtn_core::time::Time;
use dtn_sim::buffer::Buffer;

/// The replacement policy driving a scheme's cache evictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Evict the item inserted earliest.
    Fifo,
    /// Evict the least-recently-used item.
    Lru,
    /// Greedy-Dual-Size: evict the item with the lowest credit
    /// `H = L + popularity / size`, inflating `L` on every eviction.
    GreedyDualSize,
    /// The paper's scheme: no evict-on-insert; caching nodes exchange
    /// data via the probabilistic knapsack whenever they meet (§V-D).
    UtilityKnapsack,
}

impl ReplacementKind {
    /// All four policies, in the legend order of Fig. 12.
    pub const ALL: [ReplacementKind; 4] = [
        ReplacementKind::Fifo,
        ReplacementKind::Lru,
        ReplacementKind::GreedyDualSize,
        ReplacementKind::UtilityKnapsack,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::Lru => "LRU",
            ReplacementKind::GreedyDualSize => "Greedy-Dual-Size",
            ReplacementKind::UtilityKnapsack => "Utility-Knapsack",
        }
    }
}

impl std::fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-node bookkeeping for the evict-on-insert policies.
#[derive(Debug, Clone, Default)]
pub struct NodeCacheMeta {
    inserted: HashMap<DataId, Time>,
    last_used: HashMap<DataId, Time>,
    gds_credit: HashMap<DataId, f64>,
    gds_floor: f64,
}

impl NodeCacheMeta {
    /// Records that `id` was inserted now with the given popularity and
    /// size (popularity/size feeds the GDS credit).
    pub fn on_insert(&mut self, id: DataId, now: Time, popularity: f64, size: u64) {
        self.inserted.insert(id, now);
        self.last_used.insert(id, now);
        self.gds_credit
            .insert(id, self.gds_floor + popularity / size.max(1) as f64);
    }

    /// Records a use (query hit) of `id`, refreshing LRU recency and GDS
    /// credit.
    pub fn on_use(&mut self, id: DataId, now: Time, popularity: f64, size: u64) {
        self.last_used.insert(id, now);
        self.gds_credit
            .insert(id, self.gds_floor + popularity / size.max(1) as f64);
    }

    /// Forgets `id` after removal.
    pub fn on_remove(&mut self, id: DataId) {
        self.inserted.remove(&id);
        self.last_used.remove(&id);
        self.gds_credit.remove(&id);
    }

    fn eviction_key(&self, kind: ReplacementKind, id: DataId) -> f64 {
        match kind {
            ReplacementKind::Fifo => self.inserted.get(&id).map_or(0.0, |t| t.as_secs_f64()),
            ReplacementKind::Lru => self.last_used.get(&id).map_or(0.0, |t| t.as_secs_f64()),
            ReplacementKind::GreedyDualSize => self.gds_credit.get(&id).copied().unwrap_or(0.0),
            ReplacementKind::UtilityKnapsack => 0.0,
        }
    }
}

/// Frees at least `needed` bytes in `buffer` by evicting items in the
/// policy's order (lowest key first). Returns the evicted ids; returns
/// an empty vector without evicting anything if the buffer could never
/// fit `needed` bytes even when empty.
///
/// For [`ReplacementKind::UtilityKnapsack`] this function refuses to
/// evict (the paper's scheme never evicts on insert — forwarding stops
/// instead, §V-A) and returns an empty vector unless the item already
/// fits.
///
/// # Example
///
/// ```
/// use dtn_cache::replacement::{make_room, NodeCacheMeta, ReplacementKind};
/// use dtn_core::ids::{DataId, NodeId};
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::buffer::Buffer;
/// use dtn_sim::message::DataItem;
///
/// let mut buf = Buffer::new(100);
/// let mut meta = NodeCacheMeta::default();
/// let old = DataItem::new(DataId(1), NodeId(0), 80, Time(0), Duration(1000));
/// buf.insert(old).unwrap();
/// meta.on_insert(DataId(1), Time(0), 0.1, 80);
///
/// let evicted = make_room(ReplacementKind::Lru, &mut buf, &mut meta, 50);
/// assert_eq!(evicted, vec![DataId(1)]);
/// assert!(buf.fits(50));
/// ```
pub fn make_room(
    kind: ReplacementKind,
    buffer: &mut Buffer,
    meta: &mut NodeCacheMeta,
    needed: u64,
) -> Vec<DataId> {
    if buffer.fits(needed) || needed > buffer.capacity() {
        return Vec::new();
    }
    if kind == ReplacementKind::UtilityKnapsack {
        return Vec::new();
    }
    // Sort candidates by ascending eviction key (FIFO/LRU: oldest time
    // first; GDS: lowest credit first).
    let mut candidates: Vec<(f64, DataId)> = buffer
        .iter()
        .map(|d| (meta.eviction_key(kind, d.id), d.id))
        .collect();
    candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));

    let mut evicted = Vec::new();
    for (key, id) in candidates {
        if buffer.fits(needed) {
            break;
        }
        buffer.remove(id);
        meta.on_remove(id);
        if kind == ReplacementKind::GreedyDualSize {
            // Standard GDS aging: the evicted credit becomes the floor
            // added to future insertions.
            meta.gds_floor = meta.gds_floor.max(key);
        }
        evicted.push(id);
    }
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::NodeId;
    use dtn_core::time::Duration;
    use dtn_sim::message::DataItem;

    fn item(id: u64, size: u64) -> DataItem {
        DataItem::new(DataId(id), NodeId(0), size, Time(0), Duration(100_000))
    }

    fn filled_buffer(meta: &mut NodeCacheMeta) -> Buffer {
        // Three 30-byte items inserted at t = 10, 20, 30.
        let mut buf = Buffer::new(100);
        for (i, t) in [(1u64, 10u64), (2, 20), (3, 30)] {
            buf.insert(item(i, 30)).unwrap();
            meta.on_insert(DataId(i), Time(t), 0.5, 30);
        }
        buf
    }

    #[test]
    fn fifo_evicts_oldest_insertion() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        // Use item 1 recently — FIFO must ignore that.
        meta.on_use(DataId(1), Time(99), 0.5, 30);
        let evicted = make_room(ReplacementKind::Fifo, &mut buf, &mut meta, 30);
        assert_eq!(evicted, vec![DataId(1)]);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        meta.on_use(DataId(1), Time(99), 0.5, 30);
        let evicted = make_room(ReplacementKind::Lru, &mut buf, &mut meta, 30);
        assert_eq!(evicted, vec![DataId(2)]);
    }

    #[test]
    fn gds_evicts_lowest_credit_and_ages() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = Buffer::new(100);
        buf.insert(item(1, 50)).unwrap();
        meta.on_insert(DataId(1), Time(0), 0.9, 50); // credit 0.018
        buf.insert(item(2, 10)).unwrap();
        meta.on_insert(DataId(2), Time(0), 0.5, 10); // credit 0.05
        let evicted = make_room(ReplacementKind::GreedyDualSize, &mut buf, &mut meta, 60);
        assert_eq!(evicted, vec![DataId(1)], "lowest credit goes first");
        assert!(meta.gds_floor > 0.0, "floor inflates after eviction");
        // A new low-popularity insert now starts above the old credit.
        meta.on_insert(DataId(3), Time(5), 0.0, 10);
        assert!(meta.gds_credit[&DataId(3)] >= meta.gds_floor);
    }

    #[test]
    fn evicts_multiple_items_when_needed() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        let evicted = make_room(ReplacementKind::Fifo, &mut buf, &mut meta, 70);
        assert_eq!(evicted, vec![DataId(1), DataId(2)]);
        assert!(buf.fits(70));
    }

    #[test]
    fn noop_when_already_fits() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        assert!(make_room(ReplacementKind::Lru, &mut buf, &mut meta, 10).is_empty());
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn refuses_impossible_requests() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        // 200 bytes can never fit a 100-byte buffer: don't evict anything.
        assert!(make_room(ReplacementKind::Lru, &mut buf, &mut meta, 200).is_empty());
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn knapsack_kind_never_evicts_on_insert() {
        let mut meta = NodeCacheMeta::default();
        let mut buf = filled_buffer(&mut meta);
        assert!(make_room(ReplacementKind::UtilityKnapsack, &mut buf, &mut meta, 30).is_empty());
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            ReplacementKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 4);
    }
}
