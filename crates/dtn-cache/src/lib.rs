//! Cooperative caching schemes for Disruption Tolerant Networks.
//!
//! This crate implements the data-access schemes evaluated in the paper
//! (§VI):
//!
//! - [`intentional`] — the paper's contribution: intentional caching at
//!   Network Central Locations with push/pull data access, probabilistic
//!   response and utility-knapsack cache replacement;
//! - [`baselines`] — the four comparison schemes: **NoCache**,
//!   **RandomCache**, **CacheData** \[29\] and **BundleCache** \[23\],
//!   all built on incidental caching along forwarding paths;
//! - [`replacement`] — the cache-replacement policies of Fig. 12:
//!   FIFO, LRU, Greedy-Dual-Size, and the paper's utility knapsack;
//! - [`experiment`] — the end-to-end runner (warm-up → NCL selection →
//!   workload → metrics) used by every table/figure reproduction.
//!
//! # Example
//!
//! ```
//! use dtn_cache::experiment::{run_experiment, ExperimentConfig};
//! use dtn_cache::SchemeKind;
//! use dtn_core::time::Duration;
//! use dtn_trace::synthetic::SyntheticTraceBuilder;
//!
//! let trace = SyntheticTraceBuilder::new(16)
//!     .duration(Duration::days(2))
//!     .target_contacts(3_000)
//!     .seed(5)
//!     .build();
//! let config = ExperimentConfig {
//!     ncl_count: 2,
//!     mean_data_lifetime: Duration::hours(6),
//!     mean_data_size: 1 << 20,
//!     ..ExperimentConfig::default()
//! };
//! let report = run_experiment(&trace, SchemeKind::Intentional, &config, 1);
//! assert!(report.queries_issued > 0);
//! ```

pub mod baselines;
pub mod common;
pub mod experiment;
pub mod intentional;
pub mod reference;
pub mod replacement;
pub mod routing;

use dtn_core::ids::NodeId;
use dtn_core::rate::RateTable;
use dtn_core::time::Time;
use dtn_sim::engine::Scheme;

/// Which data-access scheme to run — the five lines of Fig. 10/11/13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// No caching; only the data source answers queries.
    NoCache,
    /// Every requester caches received data (LRU).
    RandomCache,
    /// Cooperative caching for wireless ad-hoc networks \[29\]: relays
    /// cache pass-by data by (locally observed) popularity.
    CacheData,
    /// DTN bundle caching \[23\]: relays cache pass-by data by a
    /// utility combining popularity and the relay's contact pattern.
    BundleCache,
    /// The paper's intentional caching at Network Central Locations.
    Intentional,
    /// Epidemic flooding of queries *and* responses with requester
    /// caching — not in the paper's comparison; a delivery upper bound
    /// that shows what unbounded replication buys (and costs).
    Flooding,
}

impl SchemeKind {
    /// The paper's five schemes, in the legend order of Fig. 10.
    pub const ALL: [SchemeKind; 5] = [
        SchemeKind::NoCache,
        SchemeKind::RandomCache,
        SchemeKind::CacheData,
        SchemeKind::BundleCache,
        SchemeKind::Intentional,
    ];

    /// The paper's five schemes plus the epidemic-flooding upper bound.
    pub const ALL_WITH_BOUNDS: [SchemeKind; 6] = [
        SchemeKind::NoCache,
        SchemeKind::RandomCache,
        SchemeKind::CacheData,
        SchemeKind::BundleCache,
        SchemeKind::Intentional,
        SchemeKind::Flooding,
    ];

    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::NoCache => "NoCache",
            SchemeKind::RandomCache => "RandomCache",
            SchemeKind::CacheData => "CacheData",
            SchemeKind::BundleCache => "BundleCache",
            SchemeKind::Intentional => "Intentional",
            SchemeKind::Flooding => "Flooding",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Network information handed to a scheme after the warm-up period
/// (§VI-A: "the first half of the trace is used as the warm-up period
/// for the accumulation of network information and subsequent NCL
/// selection").
#[derive(Debug, Clone)]
pub struct NetworkSetup<'a> {
    /// Pairwise contact rates accumulated during warm-up.
    pub rate_table: &'a RateTable,
    /// The current time (end of warm-up).
    pub now: Time,
    /// Per-node caching-buffer capacities in bytes.
    pub capacities: Vec<u64>,
    /// Time horizon `T` (seconds) for opportunistic path weights.
    pub horizon: f64,
    /// Overrides the scheme's default [`PathOracle`] refresh interval
    /// when set (plumbed from [`SimConfig::path_refresh`] by the
    /// experiment harness).
    ///
    /// [`PathOracle`]: dtn_sim::oracle::PathOracle
    /// [`SimConfig::path_refresh`]: dtn_sim::engine::SimConfig::path_refresh
    pub path_refresh: Option<dtn_core::time::Duration>,
}

/// A [`Scheme`] that can be configured from warm-up network information.
pub trait CachingScheme: Scheme {
    /// Installs NCLs, buffers and path oracles from the warm-up state.
    fn configure(&mut self, setup: &NetworkSetup<'_>);

    /// The central nodes selected (empty for schemes without NCLs).
    fn central_nodes(&self) -> &[NodeId] {
        &[]
    }

    /// Queries that reached each central node (empty for schemes
    /// without NCLs) — a load-balance view.
    fn ncl_query_load(&self) -> &[u64] {
        &[]
    }
}

impl Scheme for Box<dyn CachingScheme> {
    fn on_data_generated(
        &mut self,
        ctx: &mut dtn_sim::engine::SimCtx<'_>,
        item: dtn_sim::message::DataItem,
    ) {
        (**self).on_data_generated(ctx, item);
    }
    fn on_query_issued(
        &mut self,
        ctx: &mut dtn_sim::engine::SimCtx<'_>,
        query: dtn_sim::message::Query,
    ) {
        (**self).on_query_issued(ctx, query);
    }
    fn on_contact(
        &mut self,
        ctx: &mut dtn_sim::engine::SimCtx<'_>,
        contact: dtn_trace::trace::Contact,
    ) {
        (**self).on_contact(ctx, contact);
    }
    fn on_epoch(&mut self, ctx: &mut dtn_sim::engine::SimCtx<'_>, epoch: dtn_sim::engine::Epoch) {
        (**self).on_epoch(ctx, epoch);
    }
    fn cache_stats(&self, now: Time) -> dtn_sim::engine::CacheStats {
        (**self).cache_stats(now)
    }
    fn audit(&self, now: Time, report: &mut dtn_sim::audit::AuditReport) {
        (**self).audit(now, report);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_kind_names_are_distinct() {
        let names: std::collections::HashSet<_> = SchemeKind::ALL_WITH_BOUNDS
            .iter()
            .map(|k| k.name())
            .collect();
        assert_eq!(names.len(), 6);
        assert_eq!(SchemeKind::Intentional.to_string(), "Intentional");
    }
}
