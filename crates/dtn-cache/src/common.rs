//! Shared building blocks for the caching schemes: the data registry,
//! in-flight message records and greedy opportunistic forwarding.

use std::collections::HashMap;

use dtn_core::ids::{DataId, NodeId};
use dtn_core::popularity::PopularityEstimator;
use dtn_core::rate::RateTable;
use dtn_core::time::Time;
use dtn_sim::message::DataItem;
use dtn_sim::oracle::PathOracle;

/// Registry of all data items a scheme has seen, with global query
/// popularity estimators.
///
/// # Example
///
/// ```
/// use dtn_cache::common::DataRegistry;
/// use dtn_core::ids::{DataId, NodeId};
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::message::DataItem;
///
/// let mut reg = DataRegistry::default();
/// let item = DataItem::new(DataId(1), NodeId(0), 100, Time(0), Duration(1000));
/// reg.register(item);
/// reg.record_request(DataId(1), Time(10));
/// assert_eq!(reg.get(DataId(1)).unwrap().size, 100);
/// assert!(reg.popularity(DataId(1), Time(20)) >= 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataRegistry {
    items: HashMap<DataId, DataItem>,
    popularity: HashMap<DataId, PopularityEstimator>,
}

impl DataRegistry {
    /// Registers a newly generated item.
    pub fn register(&mut self, item: DataItem) {
        self.items.insert(item.id, item);
        self.popularity.entry(item.id).or_default();
    }

    /// Looks up an item by id.
    pub fn get(&self, id: DataId) -> Option<&DataItem> {
        self.items.get(&id)
    }

    /// Records a query for `id` at time `at` (drives Eq. 6).
    pub fn record_request(&mut self, id: DataId, at: Time) {
        self.popularity.entry(id).or_default().record_request(at);
    }

    /// The popularity `w_i` of `id` at `now` (0 for unknown items).
    pub fn popularity(&self, id: DataId, now: Time) -> f64 {
        match (self.items.get(&id), self.popularity.get(&id)) {
            (Some(item), Some(est)) => est.popularity(now, item.expires_at()),
            _ => 0.0,
        }
    }

    /// Number of locally observed requests for `id` — available to
    /// schemes that only use local history.
    pub fn request_count(&self, id: DataId) -> u64 {
        self.popularity.get(&id).map_or(0, |e| e.request_count())
    }

    /// Iterates over all registered items.
    pub fn iter(&self) -> impl Iterator<Item = &DataItem> {
        self.items.values()
    }
}

/// Greedy relay decision (§V-A): forward a message carried by `from`
/// to `to` iff `to` has a strictly better opportunistic-path weight to
/// `dest` — "a relay forwards data to another node with higher metric
/// than itself". Returns the new carrier.
///
/// Thin wrapper over [`dtn_sim::decision::DecisionPoint::forward`] so
/// the engine's contact-time forwarding and the online serving mode
/// share one code path.
pub fn better_relay(
    oracle: &mut PathOracle,
    rates: &RateTable,
    now: Time,
    from: NodeId,
    to: NodeId,
    dest: NodeId,
) -> bool {
    dtn_sim::decision::DecisionPoint::new(oracle, rates, now, &[]).forward(from, to, dest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::Duration;

    fn rates_line() -> RateTable {
        // 0 — 1 — 2 with frequent contacts
        let mut r = RateTable::new(3, Time::ZERO);
        for t in 1..=5u64 {
            r.record(NodeId(0), NodeId(1), Time(t * 100));
            r.record(NodeId(1), NodeId(2), Time(t * 100));
        }
        r
    }

    #[test]
    fn registry_tracks_items_and_popularity() {
        let mut reg = DataRegistry::default();
        let item = DataItem::new(DataId(5), NodeId(1), 10, Time(0), Duration(10_000));
        reg.register(item);
        assert_eq!(reg.get(DataId(5)).unwrap().source, NodeId(1));
        assert_eq!(reg.popularity(DataId(5), Time(1)), 0.0, "no requests yet");
        reg.record_request(DataId(5), Time(100));
        reg.record_request(DataId(5), Time(200));
        assert!(reg.popularity(DataId(5), Time(300)) > 0.5);
        assert_eq!(reg.request_count(DataId(5)), 2);
        assert_eq!(reg.iter().count(), 1);
    }

    #[test]
    fn unknown_item_has_zero_popularity() {
        let reg = DataRegistry::default();
        assert_eq!(reg.popularity(DataId(9), Time(0)), 0.0);
        assert_eq!(reg.request_count(DataId(9)), 0);
        assert!(reg.get(DataId(9)).is_none());
    }

    #[test]
    fn destination_is_always_a_better_relay() {
        let rates = rates_line();
        let mut o = PathOracle::new(3, 1000.0, Duration::hours(1));
        assert!(better_relay(
            &mut o,
            &rates,
            Time(600),
            NodeId(0),
            NodeId(2),
            NodeId(2)
        ));
    }

    #[test]
    fn carrier_at_destination_never_forwards() {
        let rates = rates_line();
        let mut o = PathOracle::new(3, 1000.0, Duration::hours(1));
        assert!(!better_relay(
            &mut o,
            &rates,
            Time(600),
            NodeId(2),
            NodeId(0),
            NodeId(2)
        ));
    }

    #[test]
    fn closer_node_is_better_relay() {
        let rates = rates_line();
        let mut o = PathOracle::new(3, 1000.0, Duration::hours(1));
        // 1 is closer to 2 than 0 is.
        assert!(better_relay(
            &mut o,
            &rates,
            Time(600),
            NodeId(0),
            NodeId(1),
            NodeId(2)
        ));
        assert!(!better_relay(
            &mut o,
            &rates,
            Time(600),
            NodeId(1),
            NodeId(0),
            NodeId(2)
        ));
    }
}
