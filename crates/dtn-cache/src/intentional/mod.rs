//! The paper's contribution: intentional caching at Network Central
//! Locations (§V).
//!
//! Life of a data item under this scheme:
//!
//! 1. **Push** (§V-A): the source holds the item and owes one copy to
//!    each of the `K` central nodes. On every contact, a copy advances
//!    to relays with a strictly higher opportunistic-path weight to its
//!    target central node; the previous relay deletes its copy. A copy
//!    *settles* (becomes a caching location of that NCL) when it reaches
//!    the central node, or earlier when the next selected relay has no
//!    buffer space.
//! 2. **Pull** (§V-B): a requester multicasts the query to all central
//!    nodes (greedy forwarding again). A central node that caches the
//!    item responds immediately; otherwise it broadcasts the query among
//!    the NCL's caching nodes (which form a connected subgraph of the
//!    contact graph, so epidemic spreading among members reaches them).
//! 3. **Probabilistic response** (§V-C): a non-central caching node that
//!    receives the query replies with probability given either by the
//!    sigmoid of the remaining query time (Eq. 4) or, in path-aware
//!    mode, by the path weight `p_CR(T_q − t₀)` to the requester.
//! 4. **Cache replacement** (§V-D): when two caching nodes meet (and
//!    the native [`ReplacementKind::UtilityKnapsack`] policy is active),
//!    their cached items are pooled and reassigned by the probabilistic
//!    knapsack (Algorithm 1) so the node closer to the NCL keeps the
//!    more popular data. With a traditional policy (FIFO/LRU/GDS — the
//!    Fig. 12 comparison) the exchange is disabled and evict-on-insert
//!    is used instead.
//!
//! # Module layout
//!
//! Each §V sub-protocol lives in its own module behind the typed
//! [`ProtocolEvent`] surface, so the stages can be read — and tested —
//! independently:
//!
//! - [`pending`](self) — the slab/queue arenas for in-flight pulls,
//!   broadcasts and responses, with monotone sequence numbers;
//! - `state` — per-node cache state: the copy table, the per-holder
//!   indexes behind `set_copy`, expiry GC, and the §V-D exchange;
//! - `push` — the §V-A push stage and the epoch-time cache migration;
//! - `pull` — the §V-B query pull and the NCL-member broadcast;
//! - `response` — the §V-C response decision and return forwarding;
//! - this file — configuration, the [`Scheme`] / [`CachingScheme`]
//!   glue, and epoch-based NCL re-election.
//!
//! # Epochs and NCL re-election
//!
//! When the engine drives [`Scheme::on_epoch`] (off by default; see
//! `SimConfig::epoch_interval`), the scheme re-runs NCL selection on a
//! contact graph rebuilt from the live [`RateTable`](dtn_core::rate::RateTable)
//! and, for every NCL whose central node moved, flips that NCL's settled
//! copies back into the §V-A push pipeline so later contacts migrate
//! them toward the new central node. With `epoch_interval = None` the
//! hook never fires and the scheme is bit-identical to the frozen-NCL
//! behaviour (and to [`reference`](crate::reference)).
//!
//! # Hot-loop layout
//!
//! A contact only involves two nodes, so this implementation indexes all
//! per-contact state by carrier node instead of sweeping global vectors
//! (see DESIGN.md §7 and [`reference`](crate::reference) for the
//! original retain-based bookkeeping it is differentially tested
//! against):
//!
//! - pending pulls/broadcasts/responses live in slab allocators with
//!   monotone sequence numbers; per-node lists point into the slabs and
//!   a contact gathers only the two endpoints' entries, sorted by
//!   sequence number to reproduce the original global processing order;
//! - expired messages, data items and response-decision memos are
//!   garbage-collected from time-ordered heaps instead of full sweeps;
//! - push copies and settled copies are indexed per holder node, and
//!   NCL membership is a counter (`member_count`) instead of a scan of
//!   every copy record;
//! - the §V-D exchange is skipped outright when neither endpoint's cache
//!   changed since the pair's last (provably empty) exchange, tracked by
//!   per-node dirty generations.
//!
//! Every shortcut preserves the reference implementation's RNG draw
//! order, `try_transmit` charge order and event order bit-for-bit;
//! `tests/scheme_equivalence.rs` enforces this.

mod pending;
mod pull;
mod push;
mod response;
mod state;

pub use state::{IntentionalScheme, ReelectionStats};

use std::cmp::Reverse;
use std::collections::HashSet;
use std::mem;

use dtn_core::ids::{DataId, NodeId, QueryId};
use dtn_core::time::{Duration, Time};
use dtn_sim::buffer::Buffer;
use dtn_sim::engine::{CacheStats, Epoch, PlanCtx, Scheme, SimCtx};
use dtn_sim::message::{DataItem, Query};
use dtn_sim::oracle::PathOracle;
use dtn_sim::probe::ProbeEvent;
use dtn_sim::profiler::Phase;
use dtn_trace::trace::Contact;

use crate::replacement::{NodeCacheMeta, ReplacementKind};
use crate::routing::ForwardingStrategy;
use crate::{CachingScheme, NetworkSetup};

use self::pending::{PullCopy, GC_PULL};
use self::state::CopyState;

/// How a caching node decides whether to return data (§V-C).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ResponseStrategy {
    /// Sigmoid of the remaining query time (Eq. 4) with the given
    /// `(p_min, p_max)`; used when nodes only know paths to the NCLs.
    Sigmoid {
        /// Response probability when no time remains.
        p_min: f64,
        /// Response probability when the full constraint remains.
        p_max: f64,
    },
    /// Path-aware: reply with probability `p_CR(T_q − t₀)` — the weight
    /// of the shortest opportunistic path to the requester evaluated at
    /// the remaining time.
    PathAware,
}

impl Default for ResponseStrategy {
    /// The §V-C example parameters: `p_min = 0.45`, `p_max = 0.8`.
    fn default() -> Self {
        ResponseStrategy::Sigmoid {
            p_min: 0.45,
            p_max: 0.8,
        }
    }
}

/// Configuration of the intentional caching scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct IntentionalConfig {
    /// Number of NCLs `K`.
    pub ncl_count: usize,
    /// Response strategy (§V-C).
    pub response: ResponseStrategy,
    /// Replacement policy (§V-D; Fig. 12 swaps this).
    pub replacement: ReplacementKind,
    /// Whether knapsack selection is probabilistic (Algorithm 1,
    /// §V-D-3) or deterministic (the basic strategy of §V-D-2). The
    /// paper argues the probabilistic variant protects cumulative data
    /// accessibility; setting this to `false` ablates that choice.
    pub probabilistic_selection: bool,
    /// How cached data copies travel back to requesters (§V-B: "any
    /// existing data forwarding protocol"). Default: greedy delegation.
    pub response_routing: ForwardingStrategy,
    /// How central nodes are picked from warm-up information. Default:
    /// the paper's probabilistic path metric (Eq. 3).
    pub ncl_selection: dtn_core::ncl::SelectionStrategy,
    /// How often cached path tables are refreshed. Overridable per run
    /// via [`NetworkSetup::path_refresh`].
    pub path_refresh: Duration,
    /// Knapsack size quantum in bytes (see
    /// [`dtn_core::knapsack::KnapsackSolver`]).
    pub knapsack_quantum: u64,
    /// Scale mode: `(max_hops, cache_slots)` switches the path oracle
    /// into hop-bounded sparse searches with a direct-mapped reach cache
    /// (see [`PathOracle::with_bounded_reach`]), and NCL selection runs
    /// on CSR graph storage. `None` (the default) keeps the exact dense
    /// oracle — required for bit-for-bit equivalence with the reference
    /// scheme, so only city-scale harnesses set this.
    pub bounded_reach: Option<(usize, usize)>,
}

impl Default for IntentionalConfig {
    fn default() -> Self {
        IntentionalConfig {
            ncl_count: 8,
            response: ResponseStrategy::default(),
            replacement: ReplacementKind::UtilityKnapsack,
            probabilistic_selection: true,
            response_routing: ForwardingStrategy::Greedy,
            ncl_selection: dtn_core::ncl::SelectionStrategy::PathMetric,
            path_refresh: Duration::hours(12),
            knapsack_quantum: 1 << 20,
            bounded_reach: None,
        }
    }
}

/// One protocol milestone, recorded when event logging is enabled
/// (see [`IntentionalScheme::enable_event_log`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A push copy settled: `node` became a caching location of NCL
    /// `ncl` for `data`.
    PushSettled {
        /// When it settled.
        at: Time,
        /// The item.
        data: DataId,
        /// The new caching node.
        node: NodeId,
        /// NCL index.
        ncl: usize,
    },
    /// A query copy arrived at the central node of NCL `ncl`.
    QueryAtCentral {
        /// Arrival time.
        at: Time,
        /// The query.
        query: QueryId,
        /// NCL index.
        ncl: usize,
    },
    /// The query was broadcast to one more caching node of the NCL.
    BroadcastSpread {
        /// When the copy spread.
        at: Time,
        /// The query.
        query: QueryId,
        /// The node that received the broadcast copy.
        node: NodeId,
    },
    /// A caching node decided to return the data (§V-C succeeded).
    ResponseSpawned {
        /// Decision time.
        at: Time,
        /// The query being answered.
        query: QueryId,
        /// The responding caching node.
        node: NodeId,
    },
    /// The requester received the data.
    Delivered {
        /// Delivery time.
        at: Time,
        /// The satisfied query.
        query: QueryId,
    },
    /// An epoch election moved NCL `ncl`'s central node.
    CentralReelected {
        /// Election time.
        at: Time,
        /// NCL index whose central node changed.
        ncl: usize,
        /// The demoted central node.
        old: NodeId,
        /// The newly elected central node.
        new: NodeId,
    },
}

impl ProtocolEvent {
    /// The same milestone in the engine-wide [`ProbeEvent`] vocabulary,
    /// or `None` for [`ProtocolEvent::Delivered`]: the engine's
    /// `mark_delivered` emits the probe-level `Delivery` event at the
    /// same instant, so mapping it here would double-count deliveries.
    pub(super) fn probe_event(self) -> Option<ProbeEvent> {
        match self {
            ProtocolEvent::PushSettled {
                at,
                data,
                node,
                ncl,
            } => Some(ProbeEvent::PushSettled {
                at,
                data,
                node,
                ncl,
            }),
            ProtocolEvent::QueryAtCentral { at, query, ncl } => {
                Some(ProbeEvent::QueryAtCentral { at, query, ncl })
            }
            ProtocolEvent::BroadcastSpread { at, query, node } => {
                Some(ProbeEvent::BroadcastSpread { at, query, node })
            }
            ProtocolEvent::ResponseSpawned { at, query, node } => {
                Some(ProbeEvent::ResponseSpawned { at, query, node })
            }
            ProtocolEvent::Delivered { .. } => None,
            ProtocolEvent::CentralReelected { at, ncl, old, new } => {
                Some(ProbeEvent::CentralReelected { at, ncl, old, new })
            }
        }
    }
}

impl IntentionalScheme {
    /// Epoch-based NCL re-election (driven by [`Scheme::on_epoch`]).
    ///
    /// Rebuilds the contact graph from the live rate table's
    /// regime-tracking current rates (EWMA inter-contact gaps, decayed
    /// while a pair stays silent — cumulative time averages would keep
    /// ranking yesterday's hubs first long after they go quiet),
    /// re-runs the configured NCL selection strategy, and keeps each
    /// still-central node at its NCL slot (so unaffected NCLs see no
    /// churn). For every
    /// slot whose central node moved, the demoted NCL's settled copies
    /// are flipped back into the §V-A push pipeline toward the new
    /// central node; the path oracle is invalidated so future forwarding
    /// decisions use the updated centrality.
    ///
    /// Runs between contacts and therefore transmits nothing and draws
    /// no randomness: with `epoch_interval = None` (the default) the
    /// scheme's behaviour is untouched.
    fn reelect(&mut self, ctx: &mut SimCtx<'_>) {
        let now = ctx.now();
        let mut graph = mem::take(&mut self.reelect_graph);
        graph.refresh_from_current_rates(ctx.rate_table(), now);
        let scores = dtn_core::ncl::select_by_strategy(
            &graph,
            self.cfg.ncl_count,
            self.horizon,
            self.cfg.ncl_selection,
        );
        self.reelect_graph = graph;
        let new_centrals = dtn_core::ncl::reassign_central_nodes(&self.centrals, &scores);
        self.reelection.elections += 1;
        let changed: Vec<(usize, NodeId, NodeId)> = self
            .centrals
            .iter()
            .zip(&new_centrals)
            .enumerate()
            .filter(|(_, (old, new))| old != new)
            .map(|(k, (&old, &new))| (k, old, new))
            .collect();
        if changed.is_empty() {
            return;
        }
        self.reelection.central_changes += changed.len() as u64;
        self.centrals = new_centrals;
        if let Some(oracle) = &mut self.oracle {
            oracle.invalidate();
            ctx.probe()
                .emit(|| ProbeEvent::OracleInvalidated { at: now });
        }
        for &(k, old, new) in &changed {
            self.log(
                ctx,
                ProtocolEvent::CentralReelected {
                    at: now,
                    ncl: k,
                    old,
                    new,
                },
            );
            let (copies, bytes) = self.migrate_ncl(now, k);
            self.reelection.migrated_copies += copies;
            self.reelection.migrated_bytes += bytes;
        }
    }
}

impl Scheme for IntentionalScheme {
    fn on_data_generated(&mut self, ctx: &mut SimCtx<'_>, item: DataItem) {
        if !self.configured() {
            return;
        }
        self.registry.register(item);
        self.data_gc.push(Reverse((item.expires_at, item.id)));
        // The source holds one physical copy and owes one to each NCL.
        let k_count = self.centrals.len();
        if self.insert_physical(ctx, item.source, item) {
            self.copies
                .insert(item.id, vec![CopyState::Carried(item.source); k_count]);
            let src = item.source.index();
            for k in 0..k_count {
                self.carried_at[src].push((item.id, k as u32));
                self.member_count[src * k_count + k] += 1;
            }
            self.cache_gen[src] += 1;
        } else {
            // The item never fits anywhere; it is lost.
            self.copies
                .insert(item.id, vec![CopyState::Dropped; k_count]);
        }
    }

    fn on_query_issued(&mut self, ctx: &mut SimCtx<'_>, query: Query) {
        if !self.configured() {
            return;
        }
        self.registry.record_request(query.data, ctx.now());
        // Local hit: the requester happens to cache the data already.
        if self.buffers[query.requester.index()].contains(query.data) {
            ctx.mark_delivered(query.id);
            self.log(
                ctx,
                ProtocolEvent::Delivered {
                    at: ctx.now(),
                    query: query.id,
                },
            );
            return;
        }
        let centrals = self.centrals.clone();
        for (k, &central) in centrals.iter().enumerate() {
            if central == query.requester {
                self.handle_query_at_central(ctx, query, k);
            } else {
                let (id, seq) = self.pulls.insert(PullCopy {
                    query,
                    ncl: k,
                    carrier: query.requester,
                });
                self.pull_at[query.requester.index()].push(id);
                self.pending_gc
                    .push(Reverse((query.expires_at, GC_PULL, id, seq)));
            }
        }
    }

    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact) {
        if !self.configured() {
            return;
        }
        let (a, b) = (contact.a, contact.b);
        self.prune(ctx);
        self.advance_pushes(ctx, a, b);
        self.advance_pulls(ctx, a, b);
        self.advance_broadcasts(ctx, a, b);
        self.advance_responses(ctx, a, b);
        self.exchange_caches(ctx, a, b);
        // Relay oracle rebuilds to an installed probe. The oracle cannot
        // emit directly (it is queried under a rate-table borrow), so the
        // scheme watches its epoch counter between contacts instead.
        if ctx.probe_enabled() {
            if let Some(oracle) = &self.oracle {
                let epoch = oracle.snapshot_epoch();
                if epoch > self.last_oracle_epoch {
                    self.last_oracle_epoch = epoch;
                    let stats = oracle.stats();
                    let at = ctx.now();
                    ctx.probe().emit(|| ProbeEvent::OracleRebuilt {
                        at,
                        epoch,
                        table_recomputes: stats.table_recomputes,
                        table_hits: stats.table_hits,
                    });
                }
            }
        }
    }

    fn on_epoch(&mut self, ctx: &mut SimCtx<'_>, _epoch: Epoch) {
        if !self.configured() {
            return;
        }
        // The whole re-election pass — contact-graph refresh, central
        // re-selection, oracle invalidation, copy migration — is the
        // maintenance-driven oracle-rebuild phase of the profile.
        ctx.profile_enter(Phase::OracleRebuild);
        self.reelect(ctx);
        ctx.profile_exit();
    }

    fn plan_contacts(&mut self, plan: &PlanCtx<'_>, batch: &[Contact]) {
        if !self.configured() {
            return;
        }
        let Some(oracle) = &mut self.oracle else {
            return;
        };
        // Every oracle query the contact hooks make is sourced at one of
        // the contact's endpoints, so priming the deduplicated endpoint
        // set covers the whole batch. The batch is endpoint-disjoint by
        // construction, which is what makes the per-source searches
        // independent.
        let mut sources: Vec<NodeId> = Vec::with_capacity(batch.len() * 2);
        for c in batch {
            if !sources.contains(&c.a) {
                sources.push(c.a);
            }
            if !sources.contains(&c.b) {
                sources.push(c.b);
            }
        }
        oracle.prime_sources(plan.rate_table(), plan.now(), &sources, plan.threads());
    }

    fn cache_stats(&self, now: Time) -> CacheStats {
        let mut copies = 0u64;
        let mut bytes = 0u64;
        let mut distinct = HashSet::new();
        for buf in &self.buffers {
            for item in buf.iter().filter(|d| d.is_alive(now)) {
                copies += 1;
                bytes += item.size;
                distinct.insert(item.id);
            }
        }
        CacheStats {
            copies,
            distinct: distinct.len() as u64,
            bytes,
        }
    }

    fn audit(&self, now: Time, report: &mut dtn_sim::audit::AuditReport) {
        self.audit_into(now, report);
    }
}

impl CachingScheme for IntentionalScheme {
    fn configure(&mut self, setup: &NetworkSetup<'_>) {
        // Scale mode swaps the adjacency-list graph for CSR storage (one
        // allocation, tighter cache lines); the selection arithmetic is
        // identical either way.
        let scores = if self.cfg.bounded_reach.is_some() {
            let graph = dtn_core::graph::CsrGraph::from_rate_table(setup.rate_table, setup.now);
            dtn_core::ncl::select_by_strategy(
                &graph,
                self.cfg.ncl_count,
                setup.horizon,
                self.cfg.ncl_selection,
            )
        } else {
            let graph = dtn_core::graph::ContactGraph::from_rate_table(setup.rate_table, setup.now);
            dtn_core::ncl::select_by_strategy(
                &graph,
                self.cfg.ncl_count,
                setup.horizon,
                self.cfg.ncl_selection,
            )
        };
        self.centrals = scores.iter().map(|s| s.node).collect();
        self.ncl_query_load = vec![0; self.centrals.len()];
        self.ncl_response_load = vec![0; self.centrals.len()];
        let oracle = PathOracle::new(
            setup.capacities.len(),
            setup.horizon,
            setup.path_refresh.unwrap_or(self.cfg.path_refresh),
        );
        self.oracle = Some(match self.cfg.bounded_reach {
            Some((hops, slots)) => oracle.with_bounded_reach(hops, slots),
            None => oracle,
        });
        self.buffers = setup.capacities.iter().map(|&c| Buffer::new(c)).collect();
        self.meta = setup
            .capacities
            .iter()
            .map(|_| NodeCacheMeta::default())
            .collect();
        let n = setup.capacities.len();
        self.copies.clear();
        self.pulls.clear();
        self.broadcasts.clear();
        self.responses.clear();
        self.pull_at = vec![Vec::new(); n];
        self.bcast_at = vec![Vec::new(); n];
        self.resp_at = vec![Vec::new(); n];
        self.carried_at = vec![Vec::new(); n];
        self.settled_at = vec![Vec::new(); n];
        self.member_count = vec![0; n * self.centrals.len()];
        self.cache_gen = vec![0; n];
        self.pair_clean.clear();
        self.pending_gc.clear();
        self.data_gc.clear();
        self.responded.clear();
        self.responded_gc.clear();
        self.horizon = setup.horizon;
        self.reelection = ReelectionStats::default();
        self.last_oracle_epoch = 0;
    }

    fn central_nodes(&self) -> &[NodeId] {
        &self.centrals
    }

    fn ncl_query_load(&self) -> &[u64] {
        &self.ncl_query_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceIntentionalScheme;
    use dtn_core::time::Duration;
    use dtn_sim::engine::{SimConfig, Simulator, WorkloadEvent};
    use dtn_trace::synthetic::SyntheticTraceBuilder;
    use dtn_trace::trace::ContactTrace;

    fn run_scheme<S: CachingScheme>(
        trace: &ContactTrace,
        scheme: S,
        events: Vec<WorkloadEvent>,
        sim_cfg: SimConfig,
    ) -> dtn_sim::metrics::Metrics {
        let mut sim = Simulator::new(trace, scheme, sim_cfg);
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rate_table = sim.rate_table().clone();
        let setup = NetworkSetup {
            rate_table: &rate_table,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        };
        sim.scheme_mut().configure(&setup);
        sim.add_workload(events);
        sim.run_to_end();
        sim.metrics().clone()
    }

    fn run_intentional(
        trace: &ContactTrace,
        cfg: IntentionalConfig,
        events: Vec<WorkloadEvent>,
        seed: u64,
    ) -> (dtn_sim::metrics::Metrics, Vec<NodeId>) {
        let sim_cfg = SimConfig {
            seed,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(trace, IntentionalScheme::new(cfg), sim_cfg);
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rate_table = sim.rate_table().clone();
        let setup = NetworkSetup {
            rate_table: &rate_table,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        };
        sim.scheme_mut().configure(&setup);
        let centrals = sim.scheme().central_nodes().to_vec();
        sim.add_workload(events);
        sim.run_to_end();
        (sim.metrics().clone(), centrals)
    }

    fn busy_trace(seed: u64) -> ContactTrace {
        SyntheticTraceBuilder::new(16)
            .duration(Duration::days(2))
            .target_contacts(6_000)
            .seed(seed)
            .build()
    }

    fn gen_event(id: u64, source: u32, size: u64, at: Time, life: Duration) -> WorkloadEvent {
        WorkloadEvent::GenerateData {
            item: DataItem::new(DataId(id), NodeId(source), size, at, life),
        }
    }

    fn mixed_workload(trace: &ContactTrace, items: u64, size: u64) -> Vec<WorkloadEvent> {
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        for i in 0..items {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                size,
                mid + Duration::minutes(i),
                life,
            ));
        }
        for i in 0..items {
            events.push(WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1) + Duration::minutes(i),
                requester: NodeId(((i + 5) % 16) as u32),
                data: DataId(i),
                constraint: Duration::hours(12),
            });
        }
        events
    }

    #[test]
    fn configure_selects_k_centrals() {
        let trace = busy_trace(1);
        let (_, centrals) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            },
            Vec::new(),
            1,
        );
        assert_eq!(centrals.len(), 3);
        let distinct: HashSet<_> = centrals.iter().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn queries_get_satisfied_end_to_end() {
        let trace = busy_trace(2);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = vec![gen_event(0, 3, 1000, mid + Duration::minutes(1), life)];
        for n in 0..16u32 {
            if n != 3 {
                events.push(WorkloadEvent::IssueQuery {
                    at: mid + Duration::hours(2),
                    requester: NodeId(n),
                    data: DataId(0),
                    constraint: Duration::hours(12),
                });
            }
        }
        let (metrics, _) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            },
            events,
            2,
        );
        assert_eq!(metrics.queries_issued, 15);
        assert!(
            metrics.queries_satisfied >= 8,
            "only {}/15 satisfied",
            metrics.queries_satisfied
        );
        assert!(metrics.avg_delay() > Duration::ZERO);
    }

    #[test]
    fn data_gets_pushed_away_from_source() {
        let trace = busy_trace(3);
        let mid = trace.midpoint();
        let events = vec![gen_event(
            0,
            5,
            1000,
            mid + Duration::minutes(1),
            Duration::days(1),
        )];
        let (metrics, _) = run_intentional(
            &trace,
            IntentionalConfig {
                ncl_count: 4,
                ..IntentionalConfig::default()
            },
            events,
            3,
        );
        // Pushing to 4 NCLs must replicate the item beyond the source.
        let last = metrics.samples.iter().rev().find(|s| s.distinct > 0);
        let copies = last.map_or(0, |s| s.copies);
        assert!(copies >= 2, "expected ≥2 cached copies, got {copies}");
        assert!(metrics.bytes_transmitted > 0);
    }

    #[test]
    fn unconfigured_scheme_ignores_events_gracefully() {
        let trace = busy_trace(4);
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig::default()),
            SimConfig::default(),
        );
        sim.add_workload(vec![gen_event(0, 1, 10, Time(10), Duration::days(1))]);
        sim.run_to_end();
        assert_eq!(sim.metrics().bytes_transmitted, 0);
    }

    #[test]
    fn zero_size_queries_do_not_block_on_capacity() {
        // Even with a tiny data item the scheme works with default cfg.
        let trace = busy_trace(5);
        let mid = trace.midpoint();
        let events = vec![
            gen_event(0, 1, 1, mid + Duration::minutes(1), Duration::days(1)),
            WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1),
                requester: NodeId(9),
                data: DataId(0),
                constraint: Duration::hours(20),
            },
        ];
        let (metrics, _) = run_intentional(&trace, IntentionalConfig::default(), events, 5);
        assert_eq!(metrics.queries_issued, 1);
    }

    #[test]
    fn requester_holding_data_is_satisfied_instantly() {
        let trace = busy_trace(6);
        let mid = trace.midpoint();
        // Source queries its own data: local hit with zero delay.
        let events = vec![
            gen_event(0, 2, 1000, mid + Duration::minutes(1), Duration::days(1)),
            WorkloadEvent::IssueQuery {
                at: mid + Duration::minutes(2),
                requester: NodeId(2),
                data: DataId(0),
                constraint: Duration::hours(10),
            },
        ];
        let (metrics, _) = run_intentional(&trace, IntentionalConfig::default(), events, 6);
        // Either the copy is still at the source (instant hit) or it was
        // pushed away — in a 1-minute window it must still be there.
        assert_eq!(metrics.queries_satisfied, 1);
        assert_eq!(metrics.total_delay_secs, 0);
    }

    #[test]
    fn tight_buffers_still_function_with_knapsack_replacement() {
        let trace = busy_trace(7);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        // Many items of 1/3 buffer size → replacement pressure.
        for i in 0..12u64 {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                400,
                mid + Duration::minutes(i),
                life,
            ));
        }
        for i in 0..12u64 {
            events.push(WorkloadEvent::IssueQuery {
                at: mid + Duration::hours(1),
                requester: NodeId(((i + 5) % 16) as u32),
                data: DataId(i),
                constraint: Duration::hours(12),
            });
        }
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1200),
            seed: 7,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(events);
        sim.run_to_end();
        let m = sim.metrics();
        assert!(m.queries_satisfied > 0, "nothing satisfied under pressure");
        // Buffers must never be over-committed.
        for buf in &sim.scheme().buffers {
            assert!(buf.used() <= buf.capacity());
        }
        sim.scheme().validate().expect("indexes stay consistent");
    }

    #[test]
    fn traditional_replacement_evicts_and_counts() {
        let trace = busy_trace(8);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = Vec::new();
        for i in 0..10u64 {
            events.push(gen_event(
                i,
                (i % 16) as u32,
                700,
                mid + Duration::minutes(i),
                life,
            ));
        }
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1100),
            seed: 8,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                replacement: ReplacementKind::Lru,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(events);
        sim.run_to_end();
        assert!(
            sim.metrics().replacement_ops > 0,
            "LRU under pressure must evict"
        );
    }

    #[test]
    fn ncl_query_load_accumulates_per_central() {
        let trace = busy_trace(13);
        let mid = trace.midpoint();
        let life = Duration::days(1);
        let mut events = vec![gen_event(0, 3, 1000, mid + Duration::minutes(1), life)];
        for n in 0..16u32 {
            if n != 3 {
                events.push(WorkloadEvent::IssueQuery {
                    at: mid + Duration::hours(2),
                    requester: NodeId(n),
                    data: DataId(0),
                    constraint: Duration::hours(12),
                });
            }
        }
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            }),
            SimConfig {
                seed: 9,
                ..SimConfig::default()
            },
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(events);
        sim.run_to_end();
        let load = sim.scheme().ncl_query_load();
        assert_eq!(load.len(), 3);
        let total: u64 = load.iter().sum();
        // Each of the 15 queries multicasts to 3 NCLs; most arrive.
        assert!(total > 15, "only {total} central arrivals");
        assert!(total <= 45);
        // Load is spread, not all on one NCL.
        assert!(
            load.iter().filter(|&&l| l > 0).count() >= 2,
            "load {load:?}"
        );
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = IntentionalConfig::default();
        assert_eq!(cfg.ncl_count, 8);
        assert_eq!(cfg.replacement, ReplacementKind::UtilityKnapsack);
        assert_eq!(
            cfg.response,
            ResponseStrategy::Sigmoid {
                p_min: 0.45,
                p_max: 0.8
            }
        );
    }

    #[test]
    fn matches_reference_scheme_bit_for_bit() {
        // The indexed-queue engine must reproduce the retain-sweep
        // reference implementation exactly: same RNG draws, same link
        // charges, same metrics. The broader randomized suite lives in
        // tests/scheme_equivalence.rs; this is the fast smoke check.
        for seed in [11u64, 12, 13] {
            let trace = busy_trace(seed);
            let cfg = IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            };
            let events = mixed_workload(&trace, 10, 900);
            let sim_cfg = SimConfig {
                seed,
                ..SimConfig::default()
            };
            let fast = run_scheme(
                &trace,
                IntentionalScheme::new(cfg.clone()),
                events.clone(),
                sim_cfg.clone(),
            );
            let reference = run_scheme(
                &trace,
                ReferenceIntentionalScheme::new(cfg),
                events,
                sim_cfg,
            );
            assert_eq!(fast, reference, "seed {seed} diverged from reference");
        }
    }

    #[test]
    fn matches_reference_under_replacement_pressure() {
        // Tight buffers force evictions, knapsack exchanges and push
        // settles — the paths with the trickiest index bookkeeping.
        let trace = busy_trace(14);
        let cfg = IntentionalConfig {
            ncl_count: 2,
            ..IntentionalConfig::default()
        };
        let events = mixed_workload(&trace, 12, 400);
        let sim_cfg = SimConfig {
            buffer_range: (1000, 1200),
            seed: 14,
            ..SimConfig::default()
        };
        let fast = run_scheme(
            &trace,
            IntentionalScheme::new(cfg.clone()),
            events.clone(),
            sim_cfg.clone(),
        );
        let reference = run_scheme(
            &trace,
            ReferenceIntentionalScheme::new(cfg),
            events,
            sim_cfg,
        );
        assert_eq!(fast, reference);
    }

    #[test]
    fn epochs_keep_invariants_and_count_elections() {
        // Epochs on a stationary trace must run elections without ever
        // corrupting the per-node indexes, and an unchanged central set
        // must migrate nothing.
        let trace = busy_trace(21);
        let mid = trace.midpoint();
        let sim_cfg = SimConfig {
            seed: 21,
            epoch_interval: Some(Duration::hours(4)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 3,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(mixed_workload(&trace, 10, 900));
        sim.run_to_end();
        let stats = sim.scheme().reelection_stats();
        assert!(stats.elections > 0, "no epoch fired in the workload half");
        sim.scheme().validate().expect("indexes stay consistent");
        if stats.central_changes == 0 {
            assert_eq!(stats.migrated_copies, 0);
            assert_eq!(stats.migrated_bytes, 0);
        }
    }

    #[test]
    fn audit_catches_seeded_corruption() {
        // The audit must not just pass on healthy runs — it must *fail*
        // when the canonical state is perturbed, else it proves nothing.
        use dtn_sim::audit::{AuditLaw, AuditReport};
        let trace = busy_trace(31);
        let sim_cfg = SimConfig {
            seed: 31,
            audit: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(
            &trace,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                ..IntentionalConfig::default()
            }),
            sim_cfg,
        );
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let rt = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &rt,
            now: mid,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        sim.add_workload(mixed_workload(&trace, 8, 900));
        sim.run_to_end();
        let engine_report = sim.audit_report().expect("audit was enabled");
        assert!(engine_report.is_clean(), "{}", engine_report.summary());
        assert!(engine_report.sweeps() > 0);
        let now = sim.now();
        let scheme = sim.scheme_mut();

        let mut clean = AuditReport::default();
        scheme.audit_into(now, &mut clean);
        assert!(clean.is_clean(), "{}", clean.summary());

        // Seed a membership-counter drift: copy conservation must trip.
        scheme.member_count[0] += 1;
        let mut report = AuditReport::default();
        scheme.audit_into(now, &mut report);
        assert!(
            report
                .violations()
                .iter()
                .any(|v| v.law == AuditLaw::CopyConservation),
            "seeded member_count drift went undetected: {}",
            report.summary()
        );
        scheme.member_count[0] -= 1;

        let mut healed = AuditReport::default();
        scheme.audit_into(now, &mut healed);
        assert!(healed.is_clean(), "{}", healed.summary());

        // Seed a dangling pending-pull locator: index consistency trips.
        scheme.pull_at[0].push(9_999);
        let mut report = AuditReport::default();
        scheme.audit_into(now, &mut report);
        assert!(
            report
                .violations()
                .iter()
                .any(|v| v.law == AuditLaw::IndexConsistency),
            "seeded dangling pull locator went undetected: {}",
            report.summary()
        );
    }
}
