//! §V-B: query pull toward the central nodes and the broadcast among an
//! NCL's caching nodes once a query reaches its central node.

use std::cmp::Reverse;
use std::collections::HashSet;
use std::mem;

use dtn_core::ids::NodeId;
use dtn_sim::engine::SimCtx;
use dtn_sim::message::Query;
use dtn_sim::probe::ProbeEvent;

use crate::common::better_relay;

use super::pending::{remove_u32, BroadcastCopy, GC_BCAST};
use super::state::IntentionalScheme;
use super::ProtocolEvent;

impl IntentionalScheme {
    /// §V-B: advance query copies toward their central nodes.
    pub(super) fn advance_pulls(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let query_size = ctx.query_size();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.pull_at[a.index()]
                .iter()
                .map(|&id| (self.pulls.seq(id).expect("indexed pull live"), id)),
        );
        if b != a {
            batch.extend(
                self.pull_at[b.index()]
                    .iter()
                    .map(|&id| (self.pulls.seq(id).expect("indexed pull live"), id)),
            );
        }
        batch.sort_unstable();
        let mut arrived = mem::take(&mut self.sx_arrived);
        arrived.clear();
        for &(_, id) in &batch {
            let Some(&pull) = self.pulls.get(id) else {
                continue;
            };
            if !ctx.query_is_open(pull.query.id) {
                self.remove_pull(id);
                continue;
            }
            let (from, to) = if pull.carrier == a { (a, b) } else { (b, a) };
            let central = self.centrals[pull.ncl];
            let oracle = self.oracle.as_mut().expect("configured");
            if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                continue;
            }
            if !ctx.try_transmit(query_size) {
                continue;
            }
            self.pulls.get_mut(id).expect("live").carrier = to;
            remove_u32(&mut self.pull_at[from.index()], id);
            self.pull_at[to.index()].push(id);
            ctx.probe().emit(|| ProbeEvent::QueryRelay {
                at: now,
                query: pull.query.id,
                from,
                to,
            });
            if to == central {
                arrived.push(id);
            }
        }
        // Handle arrivals (immediate reply or NCL broadcast) in the
        // order they advanced, dropping the delivered pull copies.
        for &id in &arrived {
            let pull = self.remove_pull(id).expect("arrived pull live");
            self.handle_query_at_central(ctx, pull.query, pull.ncl);
        }
        arrived.clear();
        self.sx_arrived = arrived;
        batch.clear();
        self.sx_batch = batch;
    }

    /// A query reached central node `centrals[ncl]` (§V-B, Fig. 6).
    pub(super) fn handle_query_at_central(
        &mut self,
        ctx: &mut SimCtx<'_>,
        query: Query,
        ncl: usize,
    ) {
        if let Some(slot) = self.ncl_query_load.get_mut(ncl) {
            *slot += 1;
        }
        self.log(
            ctx,
            ProtocolEvent::QueryAtCentral {
                at: ctx.now(),
                query: query.id,
                ncl,
            },
        );
        let central = self.centrals[ncl];
        if self.buffers[central.index()].contains(query.data) {
            // "a central node immediately replies to the requester with
            // the data if it is cached locally"
            let pop = self.registry.popularity(query.data, ctx.now());
            self.meta[central.index()].on_use(
                query.data,
                ctx.now(),
                pop,
                self.registry.get(query.data).map_or(1, |d| d.size),
            );
            if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                *slot += 1;
            }
            self.spawn_response(ctx, query, central);
        } else {
            // Otherwise broadcast among the NCL's caching nodes.
            let mut holders = HashSet::new();
            holders.insert(central);
            let (id, seq) = self.broadcasts.insert(BroadcastCopy {
                query,
                ncl,
                holders,
            });
            self.bcast_at[central.index()].push(id);
            self.pending_gc
                .push(Reverse((query.expires_at, GC_BCAST, id, seq)));
        }
    }

    /// §V-B: spread broadcast queries among NCL members; §V-C: members
    /// caching the data decide probabilistically whether to respond.
    pub(super) fn advance_broadcasts(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let query_size = ctx.query_size();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.bcast_at[a.index()]
                .iter()
                .map(|&id| (self.broadcasts.seq(id).expect("indexed broadcast live"), id)),
        );
        if b != a {
            batch.extend(
                self.bcast_at[b.index()]
                    .iter()
                    .map(|&id| (self.broadcasts.seq(id).expect("indexed broadcast live"), id)),
            );
        }
        batch.sort_unstable();
        batch.dedup(); // a broadcast held by both endpoints appears twice
        let mut spreads = mem::take(&mut self.sx_spreads);
        spreads.clear();
        for &(_, id) in &batch {
            let Some(open) = self
                .broadcasts
                .get(id)
                .map(|bc| ctx.query_is_open(bc.query.id))
            else {
                continue;
            };
            if !open {
                self.remove_broadcast(id);
                continue;
            }
            let bc = self.broadcasts.get(id).expect("live");
            for (from, to) in [(a, b), (b, a)] {
                if bc.holders.contains(&from)
                    && !bc.holders.contains(&to)
                    && (self.is_member(to, bc.ncl) || to == self.centrals[bc.ncl])
                {
                    spreads.push((id, to));
                }
            }
        }
        let mut decisions = mem::take(&mut self.sx_decisions);
        decisions.clear();
        for &(id, to) in &spreads {
            if !ctx.try_transmit(query_size) {
                continue;
            }
            let bc = self.broadcasts.get_mut(id).expect("live");
            bc.holders.insert(to);
            let (query, ncl) = (bc.query, bc.ncl);
            self.bcast_at[to.index()].push(id);
            if self.buffers[to.index()].contains(query.data) {
                decisions.push((query, to, ncl));
            }
            self.log(
                ctx,
                ProtocolEvent::BroadcastSpread {
                    at: ctx.now(),
                    query: query.id,
                    node: to,
                },
            );
        }
        for &(query, node, ncl) in &decisions {
            let before = self.responses.len();
            self.maybe_respond(ctx, query, node);
            if self.responses.len() > before {
                if let Some(slot) = self.ncl_response_load.get_mut(ncl) {
                    *slot += 1;
                }
            }
        }
        decisions.clear();
        self.sx_decisions = decisions;
        spreads.clear();
        self.sx_spreads = spreads;
        batch.clear();
        self.sx_batch = batch;
    }
}
