//! §V-C: the probabilistic response decision, and the forwarding of
//! cached data copies back to requesters (§V-B's return direction).

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::HashSet;
use std::mem;

use rand::Rng;

use dtn_core::ids::NodeId;
use dtn_core::sigmoid::ResponseFunction;
use dtn_core::time::Duration;
use dtn_sim::engine::SimCtx;
use dtn_sim::message::Query;
use dtn_sim::probe::ProbeEvent;

use crate::routing::{ForwardingStrategy, RoutedMessage};

use super::pending::{remove_u32, ResponseInFlight, GC_RESP};
use super::state::IntentionalScheme;
use super::{ProtocolEvent, ResponseStrategy};

impl IntentionalScheme {
    /// §V-C: one response decision per (query, caching node).
    pub(super) fn maybe_respond(&mut self, ctx: &mut SimCtx<'_>, query: Query, node: NodeId) {
        match self.responded.entry(query.id) {
            Entry::Occupied(mut o) => {
                if !o.get_mut().insert(node) {
                    return; // already decided
                }
            }
            Entry::Vacant(v) => {
                v.insert(HashSet::from([node]));
                self.responded_gc
                    .push(Reverse((query.expires_at, query.id)));
            }
        }
        let remaining = query.remaining(ctx.now());
        if remaining == Duration::ZERO {
            return;
        }
        let probability = match self.cfg.response {
            ResponseStrategy::Sigmoid { p_min, p_max } => {
                match ResponseFunction::new(p_min, p_max, query.constraint()) {
                    Ok(f) => f.probability(remaining),
                    Err(_) => p_max.clamp(0.0, 1.0),
                }
            }
            ResponseStrategy::PathAware => {
                let oracle = self.oracle.as_mut().expect("configured");
                let table = oracle.table(ctx.rate_table(), ctx.now(), node);
                table
                    .path_to(query.requester)
                    .map_or(0.0, |p| p.weight(remaining.as_secs_f64()))
            }
        };
        let pop = self.registry.popularity(query.data, ctx.now());
        let size = self.registry.get(query.data).map_or(1, |d| d.size);
        let responded = ctx.rng().gen_bool(probability.clamp(0.0, 1.0));
        let at = ctx.now();
        ctx.probe().emit(|| ProbeEvent::ResponseDecision {
            at,
            query: query.id,
            node,
            probability,
            responded,
        });
        if responded {
            self.meta[node.index()].on_use(query.data, ctx.now(), pop, size);
            self.spawn_response(ctx, query, node);
        }
    }

    pub(super) fn spawn_response(&mut self, ctx: &mut SimCtx<'_>, query: Query, from: NodeId) {
        self.log(
            ctx,
            ProtocolEvent::ResponseSpawned {
                at: ctx.now(),
                query: query.id,
                node: from,
            },
        );
        if from == query.requester {
            ctx.mark_delivered(query.id);
            self.log(
                ctx,
                ProtocolEvent::Delivered {
                    at: ctx.now(),
                    query: query.id,
                },
            );
            return;
        }
        let Some(&item) = self.registry.get(query.data) else {
            return;
        };
        let mut msg = RoutedMessage::new(query.requester, item.size, from);
        if let ForwardingStrategy::SprayAndWait { initial_copies } = self.cfg.response_routing {
            msg = msg.with_copy_budget(initial_copies);
        }
        let (id, seq) = self.responses.insert(ResponseInFlight { query, msg });
        self.resp_at[from.index()].push(id);
        self.pending_gc
            .push(Reverse((query.expires_at, GC_RESP, id, seq)));
    }

    /// Return cached data copies to their requesters using the
    /// configured forwarding strategy (§V-B).
    pub(super) fn advance_responses(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut batch = mem::take(&mut self.sx_batch);
        batch.clear();
        batch.extend(
            self.resp_at[a.index()]
                .iter()
                .map(|&id| (self.responses.seq(id).expect("indexed response live"), id)),
        );
        if b != a {
            batch.extend(
                self.resp_at[b.index()]
                    .iter()
                    .map(|&id| (self.responses.seq(id).expect("indexed response live"), id)),
            );
        }
        batch.sort_unstable();
        batch.dedup(); // multi-copy responses may be carried by both ends
        let mut process = mem::take(&mut self.sx_process);
        process.clear();
        for &(_, id) in &batch {
            let Some(resp) = self.responses.get(id) else {
                continue;
            };
            if ctx.query_is_open(resp.query.id) {
                process.push(id);
            } else {
                self.remove_response(id);
            }
        }
        let strategy = self.cfg.response_routing;
        let mut delivered = mem::take(&mut self.sx_delivered);
        delivered.clear();
        // With a probe installed, use the transfer-logging routed path
        // (same state transitions and link charges as the fast path) and
        // replay the hops after the link borrow ends.
        let probing = ctx.probe_enabled();
        let mut relay_hops: Vec<(dtn_core::ids::QueryId, NodeId, NodeId)> = Vec::new();
        {
            let oracle = self.oracle.as_mut().expect("configured");
            let mut link = ctx.link_access();
            for &id in &process {
                let resp = self.responses.get_mut(id).expect("live");
                let had_a = resp.msg.carries(a);
                let had_b = resp.msg.carries(b);
                let done = if probing {
                    let out = resp.msg.on_contact(strategy, oracle, now, a, b, &mut link);
                    let query = resp.query.id;
                    relay_hops.extend(out.transfers.iter().map(|&(f, t)| (query, f, t)));
                    out.delivered
                } else {
                    resp.msg
                        .on_contact_fast(strategy, oracle, now, a, b, &mut link)
                };
                let has_a = resp.msg.carries(a);
                let has_b = resp.msg.carries(b);
                let query = resp.query.id;
                if had_a != has_a {
                    if has_a {
                        self.resp_at[a.index()].push(id);
                    } else {
                        remove_u32(&mut self.resp_at[a.index()], id);
                    }
                }
                if b != a && had_b != has_b {
                    if has_b {
                        self.resp_at[b.index()].push(id);
                    } else {
                        remove_u32(&mut self.resp_at[b.index()], id);
                    }
                }
                if done {
                    delivered.push((id, query));
                }
            }
        }
        for &(query, from, to) in &relay_hops {
            ctx.probe().emit(|| ProbeEvent::ResponseRelay {
                at: now,
                query,
                from,
                to,
            });
        }
        let at = ctx.now();
        for &(id, query) in &delivered {
            if matches!(
                ctx.mark_delivered(query),
                dtn_sim::engine::DeliveryOutcome::Accepted { .. }
            ) {
                self.log(ctx, ProtocolEvent::Delivered { at, query });
            }
            self.remove_response(id);
        }
        delivered.clear();
        self.sx_delivered = delivered;
        process.clear();
        self.sx_process = process;
        batch.clear();
        self.sx_batch = batch;
    }
}
