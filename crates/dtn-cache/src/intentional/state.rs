//! Per-node cache state of the intentional scheme: the copy table, the
//! per-holder indexes kept in sync through [`IntentionalScheme::set_copy`],
//! buffer insertion/eviction, expiry garbage collection, and the §V-D
//! contact-time cache exchange.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::mem;

use dtn_core::graph::ContactGraph;
use dtn_core::ids::{DataId, NodeId, QueryId};
use dtn_core::knapsack::{CacheItem, KnapsackSolver};
use dtn_core::rate::RateTable;
use dtn_core::time::Time;
use dtn_sim::audit::{check_buffers, AuditLaw, AuditReport, AuditViolation};
use dtn_sim::buffer::Buffer;
use dtn_sim::decision::DecisionPoint;
use dtn_sim::engine::SimCtx;
use dtn_sim::message::DataItem;
use dtn_sim::oracle::PathOracle;
use dtn_sim::probe::ProbeEvent;
use dtn_sim::profiler::Phase;

use crate::common::DataRegistry;
use crate::replacement::{make_room, NodeCacheMeta, ReplacementKind};

use super::pending::{
    remove_copy_entry, remove_u32, BroadcastCopy, PendingSlab, PullCopy, ResponseInFlight,
    GC_BCAST, GC_PULL,
};
use super::{IntentionalConfig, ProtocolEvent};

/// Where one NCL's copy of a data item currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum CopyState {
    /// Still being pushed; the node is a *temporal* caching location.
    Carried(NodeId),
    /// Settled at this caching node.
    Settled(NodeId),
    /// Evicted or undeliverable.
    Dropped,
}

impl CopyState {
    pub(super) fn holder(self) -> Option<NodeId> {
        match self {
            CopyState::Carried(n) | CopyState::Settled(n) => Some(n),
            CopyState::Dropped => None,
        }
    }

    /// A copy that just moved to `node`: settled if `node` is the target
    /// central node, still in transit otherwise.
    pub(super) fn transit(node: NodeId, central: NodeId) -> CopyState {
        if node == central {
            CopyState::Settled(node)
        } else {
            CopyState::Carried(node)
        }
    }
}

/// Counters accumulated by epoch-based NCL re-election (see
/// [`IntentionalScheme::reelection_stats`]). All zero while
/// `epoch_interval` is off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReelectionStats {
    /// Epochs in which an election actually ran.
    pub elections: u64,
    /// Central-set churn: NCL slots whose central node changed, summed
    /// over all elections.
    pub central_changes: u64,
    /// Settled copies flipped back to carried for migration toward a
    /// newly elected central node.
    pub migrated_copies: u64,
    /// Total payload bytes of those migrated copies.
    pub migrated_bytes: u64,
}

/// The intentional NCL caching scheme (§V).
///
/// Construct with [`IntentionalScheme::new`], then install the warm-up
/// network state via
/// [`CachingScheme::configure`](crate::CachingScheme::configure) before
/// feeding workload events.
#[derive(Debug)]
pub struct IntentionalScheme {
    pub(super) cfg: IntentionalConfig,
    pub(super) centrals: Vec<NodeId>,
    pub(super) oracle: Option<PathOracle>,
    pub(super) buffers: Vec<Buffer>,
    pub(super) meta: Vec<NodeCacheMeta>,
    pub(super) registry: DataRegistry,
    /// copies[data][k] — the k-th NCL's copy of `data`. Never iterated
    /// in map order; all ordered traversal goes through the per-node
    /// indexes below.
    pub(super) copies: HashMap<DataId, Vec<CopyState>>,
    pub(super) pulls: PendingSlab<PullCopy>,
    pub(super) broadcasts: PendingSlab<BroadcastCopy>,
    pub(super) responses: PendingSlab<ResponseInFlight>,
    /// pull_at[n] — pending pulls currently carried by node `n`.
    pub(super) pull_at: Vec<Vec<u32>>,
    /// bcast_at[n] — broadcasts whose holder set contains node `n`.
    pub(super) bcast_at: Vec<Vec<u32>>,
    /// resp_at[n] — in-flight responses with a copy carried by `n`.
    pub(super) resp_at: Vec<Vec<u32>>,
    /// carried_at[n] — `(data, k)` push copies in `Carried(n)` state.
    pub(super) carried_at: Vec<Vec<(DataId, u32)>>,
    /// settled_at[n] — `(data, k)` copies in `Settled(n)` state.
    pub(super) settled_at: Vec<Vec<(DataId, u32)>>,
    /// member_count[n·K + k] — copies (carried or settled) node `n`
    /// holds for NCL `k`, row-major over the `K = centrals.len()` NCLs;
    /// `is_member` in O(1). Flat storage: one allocation instead of one
    /// per node, which matters at city-scale populations.
    pub(super) member_count: Vec<u32>,
    /// Dirty generation per node, bumped on every copy-state change
    /// touching the node; drives the §V-D exchange skip.
    pub(super) cache_gen: Vec<u64>,
    /// Last all-pools-empty exchange per ordered node pair:
    /// `(cache_gen_lo, cache_gen_hi, buffer_gen_lo, buffer_gen_hi)`.
    /// A pair whose generations are unchanged is skipped.
    pub(super) pair_clean: HashMap<(NodeId, NodeId), (u64, u64, u64, u64)>,
    /// Expiry heap over pending messages: `(query expiry, kind, id,
    /// seq)`. Entries referencing reused slots are detected via `seq`.
    pub(super) pending_gc: BinaryHeap<Reverse<(Time, u8, u32, u64)>>,
    /// Expiry heap over data items (replaces the all-buffer dead scan).
    pub(super) data_gc: BinaryHeap<Reverse<(Time, DataId)>>,
    /// Nodes that already made their response decision, per query.
    pub(super) responded: HashMap<QueryId, HashSet<NodeId>>,
    /// Expiry heap over `responded` entries.
    pub(super) responded_gc: BinaryHeap<Reverse<(Time, QueryId)>>,
    pub(super) solver: KnapsackSolver,
    /// Queries that arrived at each central node (NCL load, by index).
    pub(super) ncl_query_load: Vec<u64>,
    /// Responses spawned on behalf of each NCL (central or member).
    pub(super) ncl_response_load: Vec<u64>,
    /// Protocol milestones, recorded when enabled.
    pub(super) event_log: Option<Vec<ProtocolEvent>>,
    /// Last oracle snapshot epoch relayed to an installed probe; only
    /// consulted while a probe is enabled.
    pub(super) last_oracle_epoch: u64,
    /// Path horizon `T` installed by `configure`; reused by epoch
    /// re-elections so they score candidates exactly like the initial
    /// selection did.
    pub(super) horizon: f64,
    /// Scratch contact graph rebuilt in place on every re-election.
    pub(super) reelect_graph: ContactGraph,
    /// Re-election counters (zero while epochs are off).
    pub(super) reelection: ReelectionStats,
    // Reusable per-contact scratch buffers (all logically empty between
    // contacts; kept to avoid re-allocation in the hot loop).
    pub(super) sx_batch: Vec<(u64, u32)>,
    pub(super) sx_push_batch: Vec<(DataId, u32)>,
    pub(super) sx_arrived: Vec<u32>,
    pub(super) sx_spreads: Vec<(u32, NodeId)>,
    pub(super) sx_decisions: Vec<(dtn_sim::message::Query, NodeId, usize)>,
    pub(super) sx_process: Vec<u32>,
    pub(super) sx_delivered: Vec<(u32, QueryId)>,
    pub(super) sx_pool: Vec<(DataItem, NodeId)>,
    pub(super) sx_items: Vec<CacheItem>,
    pub(super) sx_chosen: Vec<usize>,
    pub(super) sx_rest: Vec<usize>,
    pub(super) sx_rest_items: Vec<CacheItem>,
    pub(super) sx_in_first: Vec<bool>,
    pub(super) sx_in_second: Vec<bool>,
}

impl IntentionalScheme {
    /// Creates an unconfigured scheme.
    pub fn new(cfg: IntentionalConfig) -> Self {
        let solver = KnapsackSolver::new(cfg.knapsack_quantum);
        IntentionalScheme {
            cfg,
            centrals: Vec::new(),
            oracle: None,
            buffers: Vec::new(),
            meta: Vec::new(),
            registry: DataRegistry::default(),
            copies: HashMap::new(),
            pulls: PendingSlab::default(),
            broadcasts: PendingSlab::default(),
            responses: PendingSlab::default(),
            pull_at: Vec::new(),
            bcast_at: Vec::new(),
            resp_at: Vec::new(),
            carried_at: Vec::new(),
            settled_at: Vec::new(),
            member_count: Vec::new(),
            cache_gen: Vec::new(),
            pair_clean: HashMap::new(),
            pending_gc: BinaryHeap::new(),
            data_gc: BinaryHeap::new(),
            responded: HashMap::new(),
            responded_gc: BinaryHeap::new(),
            solver,
            ncl_query_load: Vec::new(),
            ncl_response_load: Vec::new(),
            event_log: None,
            last_oracle_epoch: 0,
            horizon: 0.0,
            reelect_graph: ContactGraph::default(),
            reelection: ReelectionStats::default(),
            sx_batch: Vec::new(),
            sx_push_batch: Vec::new(),
            sx_arrived: Vec::new(),
            sx_spreads: Vec::new(),
            sx_decisions: Vec::new(),
            sx_process: Vec::new(),
            sx_delivered: Vec::new(),
            sx_pool: Vec::new(),
            sx_items: Vec::new(),
            sx_chosen: Vec::new(),
            sx_rest: Vec::new(),
            sx_rest_items: Vec::new(),
            sx_in_first: Vec::new(),
            sx_in_second: Vec::new(),
        }
    }

    /// Turns on protocol-event recording (off by default; events cost
    /// memory on long runs). Returns `self` for builder-style use.
    pub fn enable_event_log(mut self) -> Self {
        self.event_log = Some(Vec::new());
        self
    }

    /// Recorded protocol milestones (empty slice when logging is off).
    pub fn events(&self) -> &[ProtocolEvent] {
        self.event_log.as_deref().unwrap_or(&[])
    }

    /// Records a protocol milestone: re-emitted through the engine's
    /// probe vocabulary (when a probe is installed), and appended to the
    /// opt-in event log.
    pub(super) fn log(&mut self, ctx: &mut SimCtx<'_>, event: ProtocolEvent) {
        if ctx.probe_enabled() {
            if let Some(probe_event) = event.probe_event() {
                ctx.probe().emit(|| probe_event);
            }
        }
        if let Some(log) = &mut self.event_log {
            log.push(event);
        }
    }

    /// Queries that reached each central node, by NCL index — a
    /// load-balance view across the NCLs.
    pub fn ncl_query_load(&self) -> &[u64] {
        &self.ncl_query_load
    }

    /// Responses contributed by each NCL (its central node or caching
    /// members), by NCL index.
    pub fn ncl_response_load(&self) -> &[u64] {
        &self.ncl_response_load
    }

    /// The configuration the scheme was built with.
    pub fn config(&self) -> &IntentionalConfig {
        &self.cfg
    }

    /// A [`DecisionPoint`] borrowing this scheme's own path oracle and
    /// elected central set — the scheme-side decision API for the online
    /// serving mode. Decisions answered through it are computed by
    /// exactly the code path (`DecisionPoint::forward` ==
    /// `better_relay`) and exactly the state the engine uses at the next
    /// contact. `None` until [`configure`](crate::CachingScheme::configure)
    /// has elected central nodes and built the oracle.
    pub fn decision_point<'a>(
        &'a mut self,
        rates: &'a RateTable,
        now: Time,
    ) -> Option<DecisionPoint<'a>> {
        let oracle = self.oracle.as_mut()?;
        Some(DecisionPoint::new(oracle, rates, now, &self.centrals))
    }

    /// Counters accumulated by epoch-based NCL re-election. All zero
    /// unless the engine drives
    /// [`Scheme::on_epoch`](dtn_sim::engine::Scheme::on_epoch) via
    /// `SimConfig::epoch_interval`.
    pub fn reelection_stats(&self) -> ReelectionStats {
        self.reelection
    }

    /// Checks the scheme's internal invariants; used by stress tests.
    ///
    /// Thin wrapper over [`audit_into`](Self::audit_into).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant: buffer
    /// byte-accounting, buffer over-commitment, an NCL copy pointing at
    /// a node that does not physically hold the data, or a per-node
    /// index (copy lists, membership counters, pending-message lists)
    /// out of sync with the canonical state.
    pub fn validate(&self) -> Result<(), String> {
        let mut report = AuditReport::default();
        self.audit_into(Time::ZERO, &mut report);
        match report.violations().first() {
            Some(v) => Err(v.to_string()),
            None => Ok(()),
        }
    }

    /// Re-derives the canonical copy/index state and reports every
    /// broken conservation law into `report` (the laws of
    /// [`dtn_sim::audit`]): buffer byte-accounting, copy conservation
    /// (every live copy's holder physically stores the bytes, the
    /// per-node copy lists and membership counters match the copy
    /// table), and index consistency for the pull/broadcast/response
    /// locators. Drives [`Scheme::audit`](dtn_sim::engine::Scheme::audit).
    pub fn audit_into(&self, at: Time, report: &mut AuditReport) {
        check_buffers(&self.buffers, at, report);
        let n = self.buffers.len();
        let k_count = self.centrals.len();
        let mut expect_member = vec![0u32; n * k_count];
        let mut carried_seen = 0usize;
        let mut settled_seen = 0usize;
        for (data, states) in &self.copies {
            for (k, s) in states.iter().enumerate() {
                let Some(holder) = s.holder() else { continue };
                if !self.buffers[holder.index()].contains(*data) {
                    report.violate(AuditViolation {
                        law: AuditLaw::CopyConservation,
                        at,
                        node: Some(holder),
                        item: Some(*data),
                        detail: format!("NCL {k} copy points at a node lacking the bytes"),
                    });
                    continue;
                }
                expect_member[holder.index() * k_count + k] += 1;
                let list = match s {
                    CopyState::Carried(_) => {
                        carried_seen += 1;
                        &self.carried_at[holder.index()]
                    }
                    CopyState::Settled(_) => {
                        settled_seen += 1;
                        &self.settled_at[holder.index()]
                    }
                    CopyState::Dropped => unreachable!("holder implies not dropped"),
                };
                if !list.contains(&(*data, k as u32)) {
                    report.violate(AuditViolation {
                        law: AuditLaw::CopyConservation,
                        at,
                        node: Some(holder),
                        item: Some(*data),
                        detail: format!("NCL {k} copy missing from the holder's index list"),
                    });
                }
            }
        }
        if expect_member != self.member_count {
            let culprit = (0..n)
                .find(|&i| {
                    expect_member[i * k_count..(i + 1) * k_count]
                        != self.member_count[i * k_count..(i + 1) * k_count]
                })
                .map(|i| NodeId(i as u32));
            report.violate(AuditViolation {
                law: AuditLaw::CopyConservation,
                at,
                node: culprit,
                item: None,
                detail: "member_count out of sync with copy states".into(),
            });
        }
        let carried_total: usize = self.carried_at.iter().map(Vec::len).sum();
        let settled_total: usize = self.settled_at.iter().map(Vec::len).sum();
        if carried_total != carried_seen || settled_total != settled_seen {
            report.violate(AuditViolation {
                law: AuditLaw::CopyConservation,
                at,
                node: None,
                item: None,
                detail: format!(
                    "copy index lists hold {carried_total}+{settled_total} entries, \
                     copy states say {carried_seen}+{settled_seen}"
                ),
            });
        }
        for (node, list) in self.pull_at.iter().enumerate() {
            for &id in list {
                let Some(pull) = self.pulls.get(id) else {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("pull_at references freed slot {id}"),
                    });
                    continue;
                };
                if pull.carrier.index() != node {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("pull {id} indexed here, carried elsewhere"),
                    });
                }
            }
        }
        if self.pull_at.iter().map(Vec::len).sum::<usize>() != self.pulls.len() {
            report.violate(AuditViolation {
                law: AuditLaw::IndexConsistency,
                at,
                node: None,
                item: None,
                detail: "pull index entry count != pull slab len".into(),
            });
        }
        for (node, list) in self.bcast_at.iter().enumerate() {
            for &id in list {
                let Some(bc) = self.broadcasts.get(id) else {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("bcast_at references freed slot {id}"),
                    });
                    continue;
                };
                if !bc.holders.contains(&NodeId(node as u32)) {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("broadcast {id} indexed at a non-holder"),
                    });
                }
            }
        }
        let holder_total: usize = self.broadcasts.iter().map(|(_, bc)| bc.holders.len()).sum();
        if self.bcast_at.iter().map(Vec::len).sum::<usize>() != holder_total {
            report.violate(AuditViolation {
                law: AuditLaw::IndexConsistency,
                at,
                node: None,
                item: None,
                detail: "broadcast index entry count != holder count".into(),
            });
        }
        for (node, list) in self.resp_at.iter().enumerate() {
            for &id in list {
                let Some(resp) = self.responses.get(id) else {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("resp_at references freed slot {id}"),
                    });
                    continue;
                };
                if !resp.msg.carries(NodeId(node as u32)) {
                    report.violate(AuditViolation {
                        law: AuditLaw::IndexConsistency,
                        at,
                        node: Some(NodeId(node as u32)),
                        item: None,
                        detail: format!("response {id} indexed at a non-carrier"),
                    });
                }
            }
        }
        let carrier_total: usize = self
            .responses
            .iter()
            .map(|(_, r)| r.msg.carriers().count())
            .sum();
        if self.resp_at.iter().map(Vec::len).sum::<usize>() != carrier_total {
            report.violate(AuditViolation {
                law: AuditLaw::IndexConsistency,
                at,
                node: None,
                item: None,
                detail: "response index entry count != carrier count".into(),
            });
        }
    }

    pub(super) fn configured(&self) -> bool {
        self.oracle.is_some()
    }

    /// Whether `node` currently holds a copy (carried or settled) on
    /// behalf of NCL `ncl`.
    pub(super) fn is_member(&self, node: NodeId, ncl: usize) -> bool {
        self.member_count[node.index() * self.centrals.len() + ncl] > 0
    }

    /// Removes a pending pull and its index entry.
    pub(super) fn remove_pull(&mut self, id: u32) -> Option<PullCopy> {
        let pull = self.pulls.remove(id)?;
        remove_u32(&mut self.pull_at[pull.carrier.index()], id);
        Some(pull)
    }

    /// Removes a pending broadcast and its index entries.
    pub(super) fn remove_broadcast(&mut self, id: u32) -> Option<BroadcastCopy> {
        let bc = self.broadcasts.remove(id)?;
        for h in &bc.holders {
            remove_u32(&mut self.bcast_at[h.index()], id);
        }
        Some(bc)
    }

    /// Removes an in-flight response and its index entries.
    pub(super) fn remove_response(&mut self, id: u32) -> Option<ResponseInFlight> {
        let resp = self.responses.remove(id)?;
        for c in resp.msg.carriers() {
            remove_u32(&mut self.resp_at[c.index()], id);
        }
        Some(resp)
    }

    /// Garbage-collects expired data and dead in-flight state from the
    /// expiry heaps. Unlike the original full sweeps this touches only
    /// entries that actually expired; messages whose query closed early
    /// (satisfied) are dropped lazily when next gathered, which is
    /// unobservable because every processing path checks
    /// `query_is_open` first.
    pub(super) fn prune(&mut self, ctx: &SimCtx<'_>) {
        let now = ctx.now();
        while let Some(&Reverse((t, data))) = self.data_gc.peek() {
            if t > now {
                break;
            }
            self.data_gc.pop();
            let Some(states) = self.copies.remove(&data) else {
                continue;
            };
            for (k, s) in states.iter().enumerate() {
                let Some(h) = s.holder() else { continue };
                match s {
                    CopyState::Carried(_) => {
                        remove_copy_entry(&mut self.carried_at[h.index()], data, k as u32);
                    }
                    CopyState::Settled(_) => {
                        remove_copy_entry(&mut self.settled_at[h.index()], data, k as u32);
                    }
                    CopyState::Dropped => unreachable!("holder implies not dropped"),
                }
                let slot = h.index() * self.centrals.len() + k;
                self.member_count[slot] -= 1;
                self.cache_gen[h.index()] += 1;
                if self.buffers[h.index()].remove(data).is_some() {
                    self.meta[h.index()].on_remove(data);
                }
            }
        }
        while let Some(&Reverse((t, tag, id, seq))) = self.pending_gc.peek() {
            if t > now {
                break;
            }
            self.pending_gc.pop();
            match tag {
                GC_PULL => {
                    if self.pulls.seq(id) == Some(seq) {
                        self.remove_pull(id);
                    }
                }
                GC_BCAST => {
                    if self.broadcasts.seq(id) == Some(seq) {
                        self.remove_broadcast(id);
                    }
                }
                _ => {
                    if self.responses.seq(id) == Some(seq) {
                        self.remove_response(id);
                    }
                }
            }
        }
        while let Some(&Reverse((t, query))) = self.responded_gc.peek() {
            if t > now {
                break;
            }
            self.responded_gc.pop();
            self.responded.remove(&query);
        }
    }

    /// Inserts a physical copy of `item` at `node`, evicting per the
    /// traditional policies if configured. Returns whether it fits.
    pub(super) fn insert_physical(
        &mut self,
        ctx: &mut SimCtx<'_>,
        node: NodeId,
        item: DataItem,
    ) -> bool {
        let buf = &mut self.buffers[node.index()];
        if buf.contains(item.id) {
            return true;
        }
        if !buf.fits(item.size) {
            let evicted = make_room(
                self.cfg.replacement,
                buf,
                &mut self.meta[node.index()],
                item.size,
            );
            if !evicted.is_empty() {
                ctx.note_replacements(evicted.len() as u64);
                let at = ctx.now();
                for id in evicted {
                    ctx.probe()
                        .emit(|| ProbeEvent::ReplacementEvicted { at, node, data: id });
                    for k in 0..self.centrals.len() {
                        let holds = self
                            .copies
                            .get(&id)
                            .is_some_and(|s| s[k].holder() == Some(node));
                        if holds {
                            self.set_copy(id, k, CopyState::Dropped);
                        }
                    }
                }
            }
        }
        let buf = &mut self.buffers[node.index()];
        if buf.insert(item).is_ok() {
            let pop = self.registry.popularity(item.id, ctx.now());
            self.meta[node.index()].on_insert(item.id, ctx.now(), pop, item.size);
            true
        } else {
            false
        }
    }

    /// Removes `node`'s physical copy of `data` if no NCL copy still
    /// points at it.
    pub(super) fn drop_physical_if_unreferenced(&mut self, node: NodeId, data: DataId) {
        let referenced = self
            .copies
            .get(&data)
            .is_some_and(|states| states.iter().any(|s| s.holder() == Some(node)));
        if !referenced {
            self.buffers[node.index()].remove(data);
            self.meta[node.index()].on_remove(data);
        }
    }

    /// Routes every copy-state transition, keeping the per-node copy
    /// indexes, membership counters and dirty generations in sync.
    pub(super) fn set_copy(&mut self, data: DataId, k: usize, state: CopyState) {
        let Some(states) = self.copies.get_mut(&data) else {
            return;
        };
        let old = states[k];
        if old == state {
            return;
        }
        states[k] = state;
        let k32 = k as u32;
        match old {
            CopyState::Carried(h) => {
                remove_copy_entry(&mut self.carried_at[h.index()], data, k32);
                self.member_count[h.index() * self.centrals.len() + k] -= 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Settled(h) => {
                remove_copy_entry(&mut self.settled_at[h.index()], data, k32);
                self.member_count[h.index() * self.centrals.len() + k] -= 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Dropped => {}
        }
        match state {
            CopyState::Carried(h) => {
                self.carried_at[h.index()].push((data, k32));
                self.member_count[h.index() * self.centrals.len() + k] += 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Settled(h) => {
                self.settled_at[h.index()].push((data, k32));
                self.member_count[h.index() * self.centrals.len() + k] += 1;
                self.cache_gen[h.index()] += 1;
            }
            CopyState::Dropped => {}
        }
    }

    /// §V-D: contact-time cache replacement between two caching nodes.
    ///
    /// The exchange is scoped per NCL: each NCL keeps (at most) one copy
    /// of each data item among its connected set of caching nodes, and
    /// the exchange re-places those copies so the node nearer the
    /// central node ends up with the more popular data. Items are only
    /// removed from the network when no participant can hold them
    /// ("in cases of limited cache space, some cached data with lower
    /// popularity may be removed", §V-D-2).
    ///
    /// When a previous meeting of this pair found every NCL pool empty
    /// and neither node's copy state or buffer changed since (dirty
    /// generations match), the whole exchange is provably a no-op — the
    /// reference implementation returns before any oracle or RNG use on
    /// empty pools — and is skipped.
    pub(super) fn exchange_caches(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        if self.cfg.replacement != ReplacementKind::UtilityKnapsack {
            return;
        }
        let key = if a <= b { (a, b) } else { (b, a) };
        let gens = (
            self.cache_gen[key.0.index()],
            self.cache_gen[key.1.index()],
            self.buffers[key.0.index()].generation(),
            self.buffers[key.1.index()].generation(),
        );
        if self.pair_clean.get(&key) == Some(&gens) {
            return;
        }
        let now = ctx.now();
        let mut all_empty = true;
        for k in 0..self.centrals.len() {
            if !self.exchange_ncl(ctx, a, b, k, now) {
                all_empty = false;
            }
        }
        if all_empty {
            self.pair_clean.insert(key, gens);
        } else {
            self.pair_clean.remove(&key);
        }
    }

    /// Runs the §V-D exchange for NCL `k`. Returns whether the pooled
    /// item set was empty (used for the pair-skip memo).
    fn exchange_ncl(
        &mut self,
        ctx: &mut SimCtx<'_>,
        a: NodeId,
        b: NodeId,
        k: usize,
        now: Time,
    ) -> bool {
        // Pool the settled copies of NCL k held by either node, skipping
        // copies whose physical bytes are pinned by another NCL's tag at
        // the same node (they are not free to move). Candidates come
        // from the per-holder indexes, sorted by data id to match the
        // reference implementation's copy-table iteration order.
        let mut cand = mem::take(&mut self.sx_push_batch);
        cand.clear();
        for &(data, kk) in &self.settled_at[a.index()] {
            if kk as usize == k {
                cand.push((data, a.0));
            }
        }
        if b != a {
            for &(data, kk) in &self.settled_at[b.index()] {
                if kk as usize == k {
                    cand.push((data, b.0));
                }
            }
        }
        cand.sort_unstable();
        let mut pool = mem::take(&mut self.sx_pool);
        pool.clear();
        for &(data, holder_raw) in &cand {
            let holder = NodeId(holder_raw);
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let states = self.copies.get(&data).expect("settled copy is tracked");
            let pinned = states
                .iter()
                .enumerate()
                .any(|(j, s)| j != k && s.holder() == Some(holder));
            if !pinned {
                pool.push((item, holder));
            }
        }
        cand.clear();
        self.sx_push_batch = cand;
        if pool.is_empty() {
            self.sx_pool = pool;
            return true;
        }
        // Nothing to optimise if only one node participates and already
        // holds everything — still run when both hold copies or the
        // better-placed node differs.
        let central = self.centrals[k];
        let oracle = self.oracle.as_mut().expect("configured");
        let wa = oracle.weight(ctx.rate_table(), now, a, central);
        let wb = oracle.weight(ctx.rate_table(), now, b, central);
        let (first, second) = if wa >= wb { (a, b) } else { (b, a) };

        // Extract the pooled physical copies, remembering prior holders.
        for (item, holder) in &pool {
            self.buffers[holder.index()].remove(item.id);
            self.meta[holder.index()].on_remove(item.id);
        }

        let mut items = mem::take(&mut self.sx_items);
        items.clear();
        items.extend(pool.iter().map(|(d, _)| CacheItem {
            size: d.size,
            utility: self.registry.popularity(d.id, now),
        }));

        // Algorithm 1 (or the deterministic basic strategy when
        // ablated) for the better-placed node, then the remainder for
        // the other. The solver reuses its DP scratch across calls.
        ctx.profile_enter(Phase::KnapsackSolve);
        let cap_first = self.buffers[first.index()].free();
        let mut chosen_first = mem::take(&mut self.sx_chosen);
        chosen_first.clear();
        if self.cfg.probabilistic_selection {
            chosen_first.extend_from_slice(self.solver.probabilistic_select_in(
                &items,
                cap_first,
                ctx.rng(),
            ));
        } else {
            chosen_first.extend_from_slice(&self.solver.solve_in(&items, cap_first).indices);
        }
        let mut in_first = mem::take(&mut self.sx_in_first);
        in_first.clear();
        in_first.resize(items.len(), false);
        for &i in &chosen_first {
            in_first[i] = true;
        }
        let mut rest = mem::take(&mut self.sx_rest);
        rest.clear();
        rest.extend((0..items.len()).filter(|&i| !in_first[i]));
        let mut rest_items = mem::take(&mut self.sx_rest_items);
        rest_items.clear();
        rest_items.extend(rest.iter().map(|&i| items[i]));
        let cap_second = self.buffers[second.index()].free();
        let mut in_second = mem::take(&mut self.sx_in_second);
        in_second.clear();
        in_second.resize(items.len(), false);
        {
            let chosen_second: &[usize] = if self.cfg.probabilistic_selection {
                self.solver
                    .probabilistic_select_in(&rest_items, cap_second, ctx.rng())
            } else {
                &self.solver.solve_in(&rest_items, cap_second).indices
            };
            for &j in chosen_second {
                in_second[rest[j]] = true;
            }
        }
        ctx.profile_exit();

        let mut moves = 0u64;
        for (i, &(item, prior_holder)) in pool.iter().enumerate() {
            let target = if in_first[i] {
                Some(first)
            } else if in_second[i] {
                Some(second)
            } else {
                None
            };
            // Preference: knapsack target, then where it was before.
            let fallback = if target == Some(prior_holder) {
                None
            } else {
                Some(prior_holder)
            };
            let mut placed = false;
            for node in [target, fallback].into_iter().flatten() {
                let moved = node != prior_holder;
                // Moving needs bandwidth unless the bytes are already
                // there via another NCL's copy.
                let needs_transfer = moved && !self.buffers[node.index()].contains(item.id);
                if needs_transfer && !ctx.try_transmit(item.size) {
                    continue; // contact too short to carry the move
                }
                if self.buffers[node.index()].insert(item).is_ok() {
                    let pop = self.registry.popularity(item.id, now);
                    self.meta[node.index()].on_insert(item.id, now, pop, item.size);
                    self.set_copy(item.id, k, CopyState::Settled(node));
                    if moved {
                        moves += 1;
                    }
                    placed = true;
                    break;
                }
            }
            if !placed {
                self.set_copy(item.id, k, CopyState::Dropped);
                ctx.probe().emit(|| ProbeEvent::ReplacementEvicted {
                    at: now,
                    node: prior_holder,
                    data: item.id,
                });
                moves += 1;
            }
        }
        ctx.note_replacements(moves);

        pool.clear();
        self.sx_pool = pool;
        items.clear();
        self.sx_items = items;
        chosen_first.clear();
        self.sx_chosen = chosen_first;
        in_first.clear();
        self.sx_in_first = in_first;
        rest.clear();
        self.sx_rest = rest;
        rest_items.clear();
        self.sx_rest_items = rest_items;
        in_second.clear();
        self.sx_in_second = in_second;
        false
    }
}
