//! Slab/queue arenas for pending protocol messages.
//!
//! Pulls, broadcasts and in-flight responses all live in
//! [`PendingSlab`] allocators; per-node index lists point into the
//! slabs so a contact gathers only the two endpoints' entries. Monotone
//! sequence numbers restore the original global insertion order and
//! detect stale expiry-heap references to reused slots.

use std::collections::HashSet;

use dtn_core::ids::{DataId, NodeId};
use dtn_sim::message::Query;

use crate::routing::RoutedMessage;

/// A query copy traveling toward one central node.
#[derive(Debug, Clone, Copy)]
pub(super) struct PullCopy {
    pub(super) query: Query,
    pub(super) ncl: usize,
    pub(super) carrier: NodeId,
}

/// A query being broadcast among the caching nodes of one NCL.
#[derive(Debug, Clone)]
pub(super) struct BroadcastCopy {
    pub(super) query: Query,
    pub(super) ncl: usize,
    pub(super) holders: HashSet<NodeId>,
}

/// A cached data copy traveling back to a requester.
#[derive(Debug, Clone)]
pub(super) struct ResponseInFlight {
    pub(super) query: Query,
    pub(super) msg: RoutedMessage,
}

/// Slab of pending protocol messages. Slots are reused via a free list;
/// each live entry carries a monotone sequence number so (a) gathered
/// entries can be replayed in global insertion order and (b) stale heap
/// references to a reused slot can be detected.
#[derive(Debug)]
pub(super) struct PendingSlab<T> {
    entries: Vec<Option<(u64, T)>>,
    free: Vec<u32>,
    next_seq: u64,
    len: usize,
}

impl<T> Default for PendingSlab<T> {
    fn default() -> Self {
        PendingSlab {
            entries: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
            len: 0,
        }
    }
}

impl<T> PendingSlab<T> {
    pub(super) fn insert(&mut self, value: T) -> (u32, u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.len += 1;
        let id = match self.free.pop() {
            Some(id) => {
                self.entries[id as usize] = Some((seq, value));
                id
            }
            None => {
                self.entries.push(Some((seq, value)));
                (self.entries.len() - 1) as u32
            }
        };
        (id, seq)
    }

    pub(super) fn get(&self, id: u32) -> Option<&T> {
        self.entries
            .get(id as usize)
            .and_then(|e| e.as_ref())
            .map(|(_, v)| v)
    }

    pub(super) fn get_mut(&mut self, id: u32) -> Option<&mut T> {
        self.entries
            .get_mut(id as usize)
            .and_then(|e| e.as_mut())
            .map(|(_, v)| v)
    }

    pub(super) fn seq(&self, id: u32) -> Option<u64> {
        self.entries
            .get(id as usize)
            .and_then(|e| e.as_ref())
            .map(|&(seq, _)| seq)
    }

    pub(super) fn remove(&mut self, id: u32) -> Option<T> {
        let slot = self.entries.get_mut(id as usize)?;
        let (_, value) = slot.take()?;
        self.free.push(id);
        self.len -= 1;
        Some(value)
    }

    pub(super) fn len(&self) -> usize {
        self.len
    }

    pub(super) fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|(_, v)| (i as u32, v)))
    }

    pub(super) fn clear(&mut self) {
        self.entries.clear();
        self.free.clear();
        self.next_seq = 0;
        self.len = 0;
    }
}

/// Tags distinguishing slab kinds in the shared expiry heap.
pub(super) const GC_PULL: u8 = 0;
pub(super) const GC_BCAST: u8 = 1;
pub(super) const GC_RESP: u8 = 2;

/// Removes one occurrence of `id` from a per-node index list.
pub(super) fn remove_u32(list: &mut Vec<u32>, id: u32) {
    let pos = list
        .iter()
        .position(|&x| x == id)
        .expect("pending index entry missing");
    list.swap_remove(pos);
}

/// Removes the `(data, k)` entry from a per-node copy index list.
pub(super) fn remove_copy_entry(list: &mut Vec<(DataId, u32)>, data: DataId, k: u32) {
    let pos = list
        .iter()
        .position(|&e| e == (data, k))
        .expect("copy index entry missing");
    list.swap_remove(pos);
}
