//! §V-A: intentional data push toward the central nodes, plus the
//! epoch-time cache migration that re-enters demoted copies into the
//! push pipeline after an NCL re-election.

use std::mem;

use dtn_core::ids::NodeId;

use crate::common::better_relay;
use crate::replacement::ReplacementKind;

use super::state::{CopyState, IntentionalScheme};
use super::ProtocolEvent;
use dtn_sim::engine::SimCtx;
use dtn_sim::probe::ProbeEvent;

impl IntentionalScheme {
    /// §V-A: advance the push copies carried by either contact endpoint.
    ///
    /// Gathers the two endpoints' carried copies from `carried_at` and
    /// replays them in ascending `(data, k)` order — exactly the order
    /// the reference implementation's full copy-table scan visits the
    /// same entries. States are re-read at visit time because an
    /// eviction earlier in the batch can drop a later entry.
    pub(super) fn advance_pushes(&mut self, ctx: &mut SimCtx<'_>, a: NodeId, b: NodeId) {
        let now = ctx.now();
        let mut batch = mem::take(&mut self.sx_push_batch);
        batch.clear();
        batch.extend_from_slice(&self.carried_at[a.index()]);
        if b != a {
            batch.extend_from_slice(&self.carried_at[b.index()]);
        }
        batch.sort_unstable();
        for &(data, k32) in &batch {
            let k = k32 as usize;
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let Some(state) = self.copies.get(&data).map(|s| s[k]) else {
                continue;
            };
            let CopyState::Carried(holder) = state else {
                continue;
            };
            let (from, to) = if holder == a {
                (a, b)
            } else if holder == b {
                (b, a)
            } else {
                continue;
            };
            let central = self.centrals[k];
            let oracle = self.oracle.as_mut().expect("configured");
            if !better_relay(oracle, ctx.rate_table(), now, from, to, central) {
                continue;
            }
            // The next selected relay: forward if it can hold the
            // item, otherwise settle at the current relay (§V-A).
            let already_there = self.buffers[to.index()].contains(data);
            if already_there {
                self.set_copy(data, k, CopyState::transit(to, central));
                ctx.probe().emit(|| ProbeEvent::PushRelay {
                    at: now,
                    data,
                    from,
                    to,
                    ncl: k,
                });
                self.drop_physical_if_unreferenced(from, data);
                continue;
            }
            if !self.buffers[to.index()].fits(item.size)
                && self.cfg.replacement == ReplacementKind::UtilityKnapsack
            {
                // Next relay's buffer is full: cache here.
                self.set_copy(data, k, CopyState::Settled(from));
                self.log(
                    ctx,
                    ProtocolEvent::PushSettled {
                        at: now,
                        data,
                        node: from,
                        ncl: k,
                    },
                );
                continue;
            }
            if !ctx.try_transmit(item.size) {
                continue; // contact too short; retry later
            }
            if self.insert_physical(ctx, to, item) {
                self.set_copy(data, k, CopyState::transit(to, central));
                ctx.probe().emit(|| ProbeEvent::PushRelay {
                    at: now,
                    data,
                    from,
                    to,
                    ncl: k,
                });
                if to == central {
                    self.log(
                        ctx,
                        ProtocolEvent::PushSettled {
                            at: now,
                            data,
                            node: to,
                            ncl: k,
                        },
                    );
                }
                self.drop_physical_if_unreferenced(from, data);
            } else {
                // Traditional policy could not make room either.
                self.set_copy(data, k, CopyState::Settled(from));
                self.log(
                    ctx,
                    ProtocolEvent::PushSettled {
                        at: now,
                        data,
                        node: from,
                        ncl: k,
                    },
                );
            }
        }
        batch.clear();
        self.sx_push_batch = batch;
    }

    /// Re-enters NCL `k`'s settled copies into the §V-A push pipeline
    /// after its central node moved in a re-election.
    ///
    /// No data moves here — an epoch fires between contacts, so there is
    /// no link to transmit over. Each live settled copy merely flips
    /// back to `Carried` at its current holder (or re-settles in place
    /// when the holder *is* the new central node); subsequent contacts
    /// push it toward the new central node per the §V-A relay rule.
    /// Returns `(copies flipped, payload bytes)` for the re-election
    /// counters.
    pub(super) fn migrate_ncl(&mut self, now: dtn_core::time::Time, k: usize) -> (u64, u64) {
        let new_central = self.centrals[k];
        let mut batch = mem::take(&mut self.sx_push_batch);
        batch.clear();
        for list in &self.settled_at {
            for &(data, kk) in list {
                if kk as usize == k {
                    batch.push((data, kk));
                }
            }
        }
        batch.sort_unstable();
        let mut copies = 0u64;
        let mut bytes = 0u64;
        for &(data, _) in &batch {
            let Some(&item) = self.registry.get(data) else {
                continue;
            };
            if !item.is_alive(now) {
                continue;
            }
            let Some(CopyState::Settled(holder)) = self.copies.get(&data).map(|s| s[k]) else {
                continue;
            };
            if holder == new_central {
                continue; // already where it belongs
            }
            self.set_copy(data, k, CopyState::Carried(holder));
            copies += 1;
            bytes += item.size;
        }
        batch.clear();
        self.sx_push_batch = batch;
        (copies, bytes)
    }
}
