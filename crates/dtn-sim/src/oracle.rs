//! Cached opportunistic-path computations over the live rate table.
//!
//! Schemes repeatedly need "the weight of my best path to node X" — for
//! relay selection toward central nodes (§V-A), for query multicast
//! (§V-B), and for the probabilistic response decision (§V-C). Running a
//! full label-setting search on every contact would dominate simulation
//! time, so [`PathOracle`] memoises per-source [`PathTable`]s, mirroring
//! the paper's observation that contact rates "remain relatively
//! constant" over long periods (§III-B).
//!
//! Two structural properties keep the oracle cheap and correct:
//!
//! - **One shared snapshot per epoch.** The [`ContactGraph`] is built
//!   from the rate table once per refresh epoch and shared by the path
//!   searches of *all* sources, instead of being rebuilt per source per
//!   refresh (an `O(N²)` scan each time). Per-source tables are
//!   recomputed lazily against the current snapshot.
//! - **Generation-versioned invalidation.** A snapshot goes stale either
//!   when the wall-clock refresh interval elapses *or* when the rate
//!   table's [`RateTable::generation`] counter has grown past a
//!   geometric threshold since the snapshot was taken. The second
//!   condition closes a staleness hole: with a refresh interval longer
//!   than the simulated time span, a wall-clock-only oracle would serve
//!   the weights of the very first contacts forever, no matter how much
//!   the observed network changed. The geometric rule (rebuild when the
//!   contact count has roughly doubled) bounds the number of rebuilds by
//!   `O(log contacts)` so per-contact `record` calls never cause
//!   per-contact rebuilds.

use dtn_core::graph::{ContactGraph, CsrGraph};
use dtn_core::ids::NodeId;
use dtn_core::par::map_slice_threads;
use dtn_core::path::{
    bounded_shortest_paths, shortest_paths, PathTable, ReachScratch, SparseReach,
};
use dtn_core::rate::RateTable;
use dtn_core::time::{Duration, Time};

/// Minimum generation growth that can invalidate a snapshot, so sparse
/// early traffic does not thrash the cache (rebuild when
/// `gen_now > gen_snapshot + max(gen_snapshot, GENERATION_SLACK)`).
const GENERATION_SLACK: u64 = 64;

/// The shared per-epoch graph: adjacency lists by default, CSR storage
/// in scale mode (tighter memory, no per-node allocations).
#[derive(Debug)]
enum SnapshotGraph {
    Adjacency(ContactGraph),
    Csr(CsrGraph),
}

/// The contact-graph snapshot shared by all sources within one epoch.
#[derive(Debug)]
struct Snapshot {
    built_at: Time,
    generation: u64,
    graph: SnapshotGraph,
}

/// Cumulative oracle work counters, for probes and diagnostics.
///
/// `table_hits` counts [`PathOracle::table`] calls served from a cached
/// per-source table; `table_recomputes` counts calls that had to run a
/// fresh path search. `rebuilds` counts shared-snapshot constructions
/// (equals [`PathOracle::snapshot_epoch`]); `invalidations` counts
/// explicit [`PathOracle::invalidate`] calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Shared contact-graph snapshot (re)builds.
    pub rebuilds: u64,
    /// Explicit `invalidate()` calls.
    pub invalidations: u64,
    /// Per-source path-table recomputations.
    pub table_recomputes: u64,
    /// Per-source path-table cache hits.
    pub table_hits: u64,
}

/// Memoised single-source opportunistic path tables over a shared,
/// generation-versioned contact-graph snapshot.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::rate::RateTable;
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::oracle::PathOracle;
///
/// let mut rates = RateTable::new(3, Time::ZERO);
/// rates.record(NodeId(0), NodeId(1), Time(10));
/// rates.record(NodeId(1), NodeId(2), Time(20));
///
/// let mut oracle = PathOracle::new(3, 3600.0, Duration::hours(6));
/// let w = oracle.weight(&rates, Time(100), NodeId(0), NodeId(2));
/// assert!(w > 0.0);
/// // Self-weight is always 1.
/// assert_eq!(oracle.weight(&rates, Time(100), NodeId(1), NodeId(1)), 1.0);
/// ```
#[derive(Debug)]
pub struct PathOracle {
    horizon: f64,
    refresh: Duration,
    snapshot: Option<Snapshot>,
    /// Monotone snapshot counter; a cached table is valid only for the
    /// epoch it was computed in.
    epoch: u64,
    tables: Vec<Option<(u64, PathTable)>>,
    /// Scale mode (see [`PathOracle::with_bounded_reach`]): hop bound
    /// for [`PathOracle::weight`] searches. `None` (the default) keeps
    /// the exact dense path.
    max_hops: Option<usize>,
    /// Scale mode: direct-mapped cache of bounded sparse reaches,
    /// indexed by `source % len` — bounded memory no matter how many
    /// distinct sources query within an epoch.
    sparse: Vec<Option<(NodeId, u64, SparseReach)>>,
    scratch: ReachScratch,
    stats: OracleStats,
    /// Results precomputed by [`PathOracle::prime_sources`] for
    /// `staged_epoch`, consumed by the first cache miss on the same
    /// source. Staging is a pure cache warm-up: it never touches the
    /// snapshot, the epoch, or the stats, so a primed oracle is
    /// observably identical to an unprimed one.
    staged_epoch: u64,
    staged_dense: Vec<(NodeId, Option<PathTable>)>,
    staged_sparse: Vec<(NodeId, Option<SparseReach>)>,
}

impl PathOracle {
    /// Creates an oracle for `nodes` nodes evaluating path weights at
    /// `horizon` seconds and refreshing cached tables every `refresh`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `horizon` is not finite and positive.
    pub fn new(nodes: usize, horizon: f64, refresh: Duration) -> Self {
        assert!(nodes > 0, "oracle needs at least one node");
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be finite and positive, got {horizon}"
        );
        PathOracle {
            horizon,
            refresh,
            snapshot: None,
            epoch: 0,
            tables: (0..nodes).map(|_| None).collect(),
            max_hops: None,
            sparse: Vec::new(),
            scratch: ReachScratch::new(),
            stats: OracleStats::default(),
            staged_epoch: 0,
            staged_dense: Vec::new(),
            staged_sparse: Vec::new(),
        }
    }

    /// Switches the oracle into scale mode: [`PathOracle::weight`] runs
    /// hop-bounded sparse searches (`max_hops` relaxation levels) whose
    /// results live in a direct-mapped cache of `cache_slots` entries,
    /// and the shared snapshot is stored as CSR. Memory per epoch is
    /// `O(edges + cache_slots · reach)` instead of
    /// `O(edges + sources · nodes)` — the difference between a 100k-node
    /// population fitting in RAM or not.
    ///
    /// Weights within `max_hops` hops are exact; destinations further
    /// away read as unreachable (weight 0). Opportunistic path weights
    /// decay multiplicatively per hop, so distant-tail truncation is the
    /// standard accuracy/size trade (§V-A keeps paths short anyway).
    /// [`PathOracle::table`] still serves exact dense tables when asked.
    ///
    /// # Panics
    ///
    /// Panics if `max_hops` or `cache_slots` is zero.
    pub fn with_bounded_reach(mut self, max_hops: usize, cache_slots: usize) -> Self {
        assert!(max_hops > 0, "a zero-hop search reaches nothing");
        assert!(cache_slots > 0, "the sparse cache needs at least one slot");
        self.max_hops = Some(max_hops);
        self.sparse = (0..cache_slots.min(self.tables.len()))
            .map(|_| None)
            .collect();
        self
    }

    /// The horizon `T` used for path weights.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The current snapshot epoch: how many times the shared contact
    /// graph has been (re)built. 0 until the first query. Exposed for
    /// diagnostics and tests.
    pub fn snapshot_epoch(&self) -> u64 {
        self.epoch
    }

    /// Cumulative work counters (rebuilds, invalidations, per-source
    /// table recomputes vs cache hits). Cheap to read; never reset.
    pub fn stats(&self) -> OracleStats {
        self.stats
    }

    /// Rebuilds the shared snapshot if it is missing, wall-clock stale,
    /// or generation-stale with respect to `rates`.
    fn refresh_snapshot(&mut self, rates: &RateTable, now: Time) {
        let stale = match &self.snapshot {
            None => true,
            Some(s) => {
                now.saturating_since(s.built_at) >= self.refresh
                    || rates.generation()
                        > s.generation
                            .saturating_add(s.generation.max(GENERATION_SLACK))
            }
        };
        if stale {
            let graph = if self.max_hops.is_some() {
                SnapshotGraph::Csr(CsrGraph::from_rate_table(rates, now))
            } else {
                SnapshotGraph::Adjacency(ContactGraph::from_rate_table(rates, now))
            };
            self.snapshot = Some(Snapshot {
                built_at: now,
                generation: rates.generation(),
                graph,
            });
            self.epoch += 1;
            self.stats.rebuilds += 1;
        }
    }

    /// The path table from `source`, recomputed against the shared
    /// snapshot if the cached copy belongs to an older epoch.
    ///
    /// Always an exact, unbounded search — in scale mode this is the
    /// expensive dense escape hatch (an `O(nodes)` table per distinct
    /// source per epoch); hot paths should prefer [`PathOracle::weight`].
    pub fn table(&mut self, rates: &RateTable, now: Time, source: NodeId) -> &PathTable {
        self.refresh_snapshot(rates, now);
        let snapshot = self.snapshot.as_ref().expect("snapshot just refreshed");
        let slot = &mut self.tables[source.index()];
        let valid = matches!(slot, Some((epoch, _)) if *epoch == self.epoch);
        if valid {
            self.stats.table_hits += 1;
        } else {
            // A recompute, whether served live or from the plan phase's
            // staging area: the staged table was built against this very
            // snapshot, so consuming it is the same pure computation —
            // stats included — just done earlier on another thread.
            self.stats.table_recomputes += 1;
            let staged = (self.staged_epoch == self.epoch)
                .then(|| {
                    self.staged_dense
                        .iter_mut()
                        .find(|(n, t)| *n == source && t.is_some())
                })
                .flatten()
                .and_then(|(_, t)| t.take());
            let table = staged.unwrap_or_else(|| match &snapshot.graph {
                SnapshotGraph::Adjacency(g) => shortest_paths(g, source, self.horizon),
                SnapshotGraph::Csr(g) => shortest_paths(g, source, self.horizon),
            });
            *slot = Some((self.epoch, table));
        }
        &slot.as_ref().expect("just computed").1
    }

    /// The best-path weight from `source` to `dest` (1 if equal,
    /// 0 if unreachable — including, in scale mode, destinations past
    /// the hop bound).
    pub fn weight(&mut self, rates: &RateTable, now: Time, source: NodeId, dest: NodeId) -> f64 {
        if source == dest {
            return 1.0;
        }
        let Some(hops) = self.max_hops else {
            return self.table(rates, now, source).weight_to(dest);
        };
        self.refresh_snapshot(rates, now);
        let snapshot = self.snapshot.as_ref().expect("snapshot just refreshed");
        let slot_index = source.index() % self.sparse.len();
        let slot = &mut self.sparse[slot_index];
        let valid = matches!(slot, Some((s, epoch, _)) if *s == source && *epoch == self.epoch);
        if valid {
            self.stats.table_hits += 1;
        } else {
            // A collision evicts the previous tenant (direct-mapped).
            self.stats.table_recomputes += 1;
            let staged = (self.staged_epoch == self.epoch)
                .then(|| {
                    self.staged_sparse
                        .iter_mut()
                        .find(|(n, r)| *n == source && r.is_some())
                })
                .flatten()
                .and_then(|(_, r)| r.take());
            let reach = staged.unwrap_or_else(|| match &snapshot.graph {
                SnapshotGraph::Adjacency(g) => {
                    bounded_shortest_paths(g, source, self.horizon, hops, &mut self.scratch)
                }
                SnapshotGraph::Csr(g) => {
                    bounded_shortest_paths(g, source, self.horizon, hops, &mut self.scratch)
                }
            });
            *slot = Some((source, self.epoch, reach));
        }
        slot.as_ref().expect("just computed").2.weight_to(dest)
    }

    /// Precomputes the path searches for `sources` against the *current*
    /// snapshot on up to `threads` scoped worker threads, staging the
    /// results for later cache misses ([`PathOracle::table`] in dense
    /// mode, [`PathOracle::weight`] in scale mode).
    ///
    /// This is the parallel plan phase of the windowed executor: each
    /// source's search is an independent pure function of the shared
    /// snapshot, so the staged result is byte-identical to what the
    /// serial miss path would compute — the miss still counts a
    /// `table_recomputes` when it consumes a staged entry, keeping
    /// [`OracleStats`] bit-identical to an unprimed run.
    ///
    /// Priming **never** refreshes the snapshot (the serial engine
    /// records the triggering contact before any query, so a plan-time
    /// rebuild would snapshot a different rate table) and is skipped
    /// entirely when no snapshot exists or the staleness rule already
    /// fires at `now`: a consumption-time rebuild bumps the epoch and
    /// orphans every staged entry, so eager work would be wasted.
    /// Skipping is a pure performance heuristic — correctness never
    /// depends on it.
    pub fn prime_sources(
        &mut self,
        rates: &RateTable,
        now: Time,
        sources: &[NodeId],
        threads: usize,
    ) {
        let Some(s) = &self.snapshot else { return };
        let wall_stale = now.saturating_since(s.built_at) >= self.refresh;
        let gen_stale = rates.generation()
            > s.generation
                .saturating_add(s.generation.max(GENERATION_SLACK));
        if wall_stale || gen_stale {
            return;
        }
        let epoch = self.epoch;
        if self.staged_epoch != epoch {
            self.staged_dense.clear();
            self.staged_sparse.clear();
            self.staged_epoch = epoch;
        }
        let horizon = self.horizon;
        match self.max_hops {
            None => {
                let todo: Vec<NodeId> = sources
                    .iter()
                    .copied()
                    .filter(|src| {
                        !matches!(&self.tables[src.index()], Some((e, _)) if *e == epoch)
                            && !self
                                .staged_dense
                                .iter()
                                .any(|(n, t)| n == src && t.is_some())
                    })
                    .collect();
                if todo.is_empty() {
                    return;
                }
                let tables: Vec<PathTable> = match &s.graph {
                    SnapshotGraph::Adjacency(g) => {
                        map_slice_threads(threads, &todo, |&src| shortest_paths(g, src, horizon))
                    }
                    SnapshotGraph::Csr(g) => {
                        map_slice_threads(threads, &todo, |&src| shortest_paths(g, src, horizon))
                    }
                };
                self.staged_dense
                    .extend(todo.into_iter().zip(tables.into_iter().map(Some)));
            }
            Some(hops) => {
                let todo: Vec<NodeId> = sources
                    .iter()
                    .copied()
                    .filter(|src| {
                        let slot = &self.sparse[src.index() % self.sparse.len()];
                        !matches!(slot, Some((n, e, _)) if n == src && *e == epoch)
                            && !self
                                .staged_sparse
                                .iter()
                                .any(|(n, r)| n == src && r.is_some())
                    })
                    .collect();
                if todo.is_empty() {
                    return;
                }
                // Each worker call gets a fresh scratch: the search is
                // pure with respect to scratch history (epoch-stamped
                // first-touch init), so fresh ≡ reused bit for bit.
                let reaches: Vec<SparseReach> = match &s.graph {
                    SnapshotGraph::Adjacency(g) => map_slice_threads(threads, &todo, |&src| {
                        bounded_shortest_paths(g, src, horizon, hops, &mut ReachScratch::new())
                    }),
                    SnapshotGraph::Csr(g) => map_slice_threads(threads, &todo, |&src| {
                        bounded_shortest_paths(g, src, horizon, hops, &mut ReachScratch::new())
                    }),
                };
                self.staged_sparse
                    .extend(todo.into_iter().zip(reaches.into_iter().map(Some)));
            }
        }
    }

    /// Drops the snapshot and every cached table (e.g. after a
    /// configuration change). The next query starts a new epoch.
    pub fn invalidate(&mut self) {
        self.snapshot = None;
        for slot in &mut self.tables {
            *slot = None;
        }
        for slot in &mut self.sparse {
            *slot = None;
        }
        self.staged_dense.clear();
        self.staged_sparse.clear();
        self.stats.invalidations += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates_line() -> RateTable {
        let mut r = RateTable::new(4, Time::ZERO);
        for t in 1..=5u64 {
            r.record(NodeId(0), NodeId(1), Time(t * 100));
            r.record(NodeId(1), NodeId(2), Time(t * 100));
            r.record(NodeId(2), NodeId(3), Time(t * 100));
        }
        r
    }

    #[test]
    fn weight_decreases_with_distance() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let now = Time(1000);
        let w1 = o.weight(&rates, now, NodeId(0), NodeId(1));
        let w2 = o.weight(&rates, now, NodeId(0), NodeId(2));
        let w3 = o.weight(&rates, now, NodeId(0), NodeId(3));
        assert!(w1 > w2 && w2 > w3 && w3 > 0.0);
    }

    #[test]
    fn cache_hit_reuses_table_until_refresh() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let w_before = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        // Add more contacts — too few to trip the generation threshold —
        // and stay inside the refresh window: the cached table must still
        // be served.
        for t in 6..=50u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 100));
        }
        let w_cached = o.weight(&rates, Time(1500), NodeId(0), NodeId(1));
        assert_eq!(w_before, w_cached);
        // After the refresh interval the new rates are picked up.
        let w_fresh = o.weight(&rates, Time(1000 + 3600), NodeId(0), NodeId(1));
        assert!(w_fresh > w_cached);
    }

    #[test]
    fn one_snapshot_serves_all_sources_within_an_epoch() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        for s in 0..4u32 {
            let _ = o.weight(&rates, Time(1000 + u64::from(s)), NodeId(s), NodeId(3));
        }
        // Four sources, one shared contact-graph build.
        assert_eq!(o.snapshot_epoch(), 1);
    }

    #[test]
    fn generation_growth_invalidates_despite_endless_refresh_interval() {
        // Regression: with a refresh interval longer than the whole
        // simulated period, a wall-clock-only oracle would serve the
        // weights of the first few contacts forever. Generation
        // versioning must pick up the drastically changed rate table.
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(10_000));
        let w_first = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        // Roughly an order of magnitude more contacts: far past the
        // doubling threshold.
        for t in 6..=150u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 10));
        }
        let w_updated = o.weight(&rates, Time(1500), NodeId(0), NodeId(1));
        assert!(o.snapshot_epoch() >= 2, "snapshot was never rebuilt");
        assert!(
            w_updated > w_first,
            "stale weight {w_first} still served after massive rate change ({w_updated})"
        );
    }

    #[test]
    fn generation_slack_and_doubling_thresholds_are_exact() {
        // Pins the invalidation rule: a snapshot taken at generation g
        // survives until generation g + max(g, GENERATION_SLACK)
        // inclusive, and is rebuilt on the very next recorded contact.
        let mut rates = RateTable::new(2, Time::ZERO);
        // Wall-clock refresh effectively disabled; `now` held constant.
        let mut o = PathOracle::new(2, 3600.0, Duration::hours(10_000));
        let (a, b) = (NodeId(0), NodeId(1));
        rates.record(a, b, Time(1));
        let _ = o.weight(&rates, Time(10), a, b);
        assert_eq!(o.snapshot_epoch(), 1); // snapshot at generation 1

        // Slack regime (g = 1 < 64): stale only past generation 1 + 64.
        while rates.generation() < 65 {
            rates.record(a, b, Time(2));
        }
        let _ = o.weight(&rates, Time(10), a, b);
        assert_eq!(o.snapshot_epoch(), 1, "gen 65 = 1 + max(1, 64): cached");
        rates.record(a, b, Time(3));
        let _ = o.weight(&rates, Time(10), a, b);
        assert_eq!(o.snapshot_epoch(), 2, "gen 66 > 65: rebuilt");

        // Doubling regime (g = 66 > 64): stale only past 66 + 66.
        while rates.generation() < 132 {
            rates.record(a, b, Time(4));
        }
        let _ = o.weight(&rates, Time(10), a, b);
        assert_eq!(o.snapshot_epoch(), 2, "gen 132 = 66 + max(66, 64): cached");
        rates.record(a, b, Time(5));
        let _ = o.weight(&rates, Time(10), a, b);
        assert_eq!(o.snapshot_epoch(), 3, "gen 133 > 132: rebuilt");
    }

    #[test]
    fn generation_rebuilds_are_amortised() {
        // Querying after every single contact must not rebuild per
        // contact: the doubling rule keeps rebuild count logarithmic.
        let mut rates = RateTable::new(3, Time::ZERO);
        let mut o = PathOracle::new(3, 3600.0, Duration::hours(10_000));
        for t in 1..=2000u64 {
            rates.record(NodeId(0), NodeId(1), Time(t));
            let _ = o.weight(&rates, Time(t), NodeId(0), NodeId(1));
        }
        let epochs = o.snapshot_epoch();
        assert!(
            epochs <= 12,
            "expected O(log contacts) snapshot rebuilds, got {epochs}"
        );
    }

    #[test]
    fn invalidate_forces_recompute() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let w0 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        for t in 6..=50u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 10));
        }
        o.invalidate();
        let w1 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        assert!(w1 > w0);
    }

    #[test]
    fn stats_count_rebuilds_hits_and_recomputes() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        assert_eq!(o.stats(), OracleStats::default());
        let _ = o.weight(&rates, Time(1000), NodeId(0), NodeId(3)); // recompute
        let _ = o.weight(&rates, Time(1001), NodeId(0), NodeId(2)); // hit
        let _ = o.weight(&rates, Time(1002), NodeId(1), NodeId(3)); // recompute
        let _ = o.weight(&rates, Time(1003), NodeId(1), NodeId(1)); // self: no table
        let s = o.stats();
        assert_eq!(s.rebuilds, 1);
        assert_eq!(s.table_recomputes, 2);
        assert_eq!(s.table_hits, 1);
        assert_eq!(s.invalidations, 0);
        o.invalidate();
        let _ = o.weight(&rates, Time(1004), NodeId(0), NodeId(3));
        let s = o.stats();
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.rebuilds, 2);
        assert_eq!(s.table_recomputes, 3);
    }

    #[test]
    fn self_weight_is_one_without_computation() {
        let rates = RateTable::new(2, Time::ZERO);
        let mut o = PathOracle::new(2, 100.0, Duration::hours(1));
        assert_eq!(o.weight(&rates, Time(0), NodeId(1), NodeId(1)), 1.0);
    }

    #[test]
    fn bounded_reach_matches_exact_weights_within_the_bound() {
        // The 4-node line has diameter 3: a 4-hop bound must reproduce
        // the dense oracle's weights bit for bit.
        let rates = rates_line();
        let mut exact = PathOracle::new(4, 3600.0, Duration::hours(1));
        let mut scaled = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(4, 4);
        let now = Time(1000);
        for s in 0..4u32 {
            for d in 0..4u32 {
                assert_eq!(
                    exact.weight(&rates, now, NodeId(s), NodeId(d)),
                    scaled.weight(&rates, now, NodeId(s), NodeId(d)),
                    "weight {s}→{d} diverged under the hop bound"
                );
            }
        }
    }

    #[test]
    fn hop_bound_truncates_distant_weights_to_zero() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(1, 4);
        let now = Time(1000);
        // One hop: direct neighbor reachable, two hops away is not.
        assert!(o.weight(&rates, now, NodeId(0), NodeId(1)) > 0.0);
        assert_eq!(o.weight(&rates, now, NodeId(0), NodeId(2)), 0.0);
    }

    #[test]
    fn direct_mapped_cache_hits_and_collides_as_sized() {
        let rates = rates_line();
        // One slot: alternating sources evict each other every call.
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(4, 1);
        let now = Time(1000);
        let _ = o.weight(&rates, now, NodeId(0), NodeId(3));
        let _ = o.weight(&rates, now, NodeId(0), NodeId(2)); // hit
        let _ = o.weight(&rates, now, NodeId(1), NodeId(3)); // evicts 0
        let _ = o.weight(&rates, now, NodeId(0), NodeId(1)); // evicts 1
        let s = o.stats();
        assert_eq!(s.table_recomputes, 3);
        assert_eq!(s.table_hits, 1);
        assert_eq!(s.rebuilds, 1, "collisions must not rebuild the snapshot");
    }

    #[test]
    fn scale_mode_still_serves_exact_dense_tables() {
        let rates = rates_line();
        let mut exact = PathOracle::new(4, 3600.0, Duration::hours(1));
        let mut scaled = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(2, 2);
        let now = Time(1000);
        let te = exact.table(&rates, now, NodeId(0));
        let ts = scaled.table(&rates, now, NodeId(0));
        for d in 0..4u32 {
            assert_eq!(te.weight_to(NodeId(d)), ts.weight_to(NodeId(d)));
        }
    }

    #[test]
    fn primed_oracle_is_observably_identical_dense() {
        // Prime every source up front on 2 threads, then replay the
        // same queries on an unprimed oracle: weights AND stats must
        // match bit for bit — priming is invisible.
        let rates = rates_line();
        let now = Time(1000);
        let mut plain = PathOracle::new(4, 3600.0, Duration::hours(1));
        let mut primed = PathOracle::new(4, 3600.0, Duration::hours(1));
        // The snapshot must exist before priming (prime never builds one).
        let _ = primed.table(&rates, now, NodeId(0));
        let _ = plain.table(&rates, now, NodeId(0));
        let sources: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        primed.prime_sources(&rates, now, &sources, 2);
        for s in 0..4u32 {
            for d in 0..4u32 {
                assert_eq!(
                    plain.weight(&rates, now, NodeId(s), NodeId(d)),
                    primed.weight(&rates, now, NodeId(s), NodeId(d)),
                    "weight {s}→{d} diverged after priming"
                );
            }
        }
        assert_eq!(plain.stats(), primed.stats(), "stats diverged");
        assert_eq!(plain.snapshot_epoch(), primed.snapshot_epoch());
    }

    #[test]
    fn primed_oracle_is_observably_identical_sparse() {
        let rates = rates_line();
        let now = Time(1000);
        let mut plain = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(3, 4);
        let mut primed = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(3, 4);
        let _ = plain.weight(&rates, now, NodeId(0), NodeId(1));
        let _ = primed.weight(&rates, now, NodeId(0), NodeId(1));
        let sources: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        primed.prime_sources(&rates, now, &sources, 2);
        for s in 0..4u32 {
            for d in 0..4u32 {
                assert_eq!(
                    plain.weight(&rates, now, NodeId(s), NodeId(d)),
                    primed.weight(&rates, now, NodeId(s), NodeId(d)),
                    "sparse weight {s}→{d} diverged after priming"
                );
            }
        }
        assert_eq!(plain.stats(), primed.stats(), "stats diverged");
    }

    #[test]
    fn priming_without_a_snapshot_is_a_no_op() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        o.prime_sources(&rates, Time(1000), &[NodeId(0), NodeId(1)], 2);
        assert_eq!(o.stats(), OracleStats::default());
        assert_eq!(o.snapshot_epoch(), 0, "priming must never build a snapshot");
    }

    #[test]
    fn stale_staged_entries_are_orphaned_by_rebuild() {
        // Stage against epoch 1, force a generation rebuild, then query:
        // the miss must compute fresh weights from the *new* snapshot,
        // not serve the stale staged table.
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(10_000));
        let w_old = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        o.prime_sources(&rates, Time(1000), &[NodeId(1)], 2);
        for t in 6..=150u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 10));
        }
        let w_new = o.weight(&rates, Time(1001), NodeId(1), NodeId(0));
        assert!(o.snapshot_epoch() >= 2, "generation rebuild expected");
        assert!(
            w_new > w_old,
            "stale staged weight {w_new} served after the snapshot moved on"
        );
    }

    #[test]
    fn invalidate_clears_staged_entries() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let _ = o.table(&rates, Time(1000), NodeId(0));
        o.prime_sources(&rates, Time(1000), &[NodeId(1)], 2);
        for t in 6..=50u64 {
            rates.record(NodeId(1), NodeId(0), Time(t * 10));
        }
        o.invalidate();
        // Post-invalidate the epoch advances; the old staged entry must
        // be gone, and the fresh snapshot serves the updated weight.
        let w = o.weight(&rates, Time(1000), NodeId(1), NodeId(0));
        let mut fresh = PathOracle::new(4, 3600.0, Duration::hours(1));
        assert_eq!(w, fresh.weight(&rates, Time(1000), NodeId(1), NodeId(0)));
    }

    #[test]
    fn invalidate_clears_the_sparse_cache() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1)).with_bounded_reach(4, 4);
        let w0 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        for t in 6..=50u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 10));
        }
        o.invalidate();
        let w1 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        assert!(w1 > w0, "stale sparse reach served after invalidate");
    }
}
