//! Cached opportunistic-path computations over the live rate table.
//!
//! Schemes repeatedly need "the weight of my best path to node X" — for
//! relay selection toward central nodes (§V-A), for query multicast
//! (§V-B), and for the probabilistic response decision (§V-C). Running a
//! full label-setting search on every contact would dominate simulation
//! time, so [`PathOracle`] memoises per-source [`PathTable`]s and
//! invalidates them after a configurable refresh interval, mirroring the
//! paper's observation that contact rates "remain relatively constant"
//! over long periods (§III-B).

use dtn_core::graph::ContactGraph;
use dtn_core::ids::NodeId;
use dtn_core::path::{shortest_paths, PathTable};
use dtn_core::rate::RateTable;
use dtn_core::time::{Duration, Time};

/// Memoised single-source opportunistic path tables.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::rate::RateTable;
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::oracle::PathOracle;
///
/// let mut rates = RateTable::new(3, Time::ZERO);
/// rates.record(NodeId(0), NodeId(1), Time(10));
/// rates.record(NodeId(1), NodeId(2), Time(20));
///
/// let mut oracle = PathOracle::new(3, 3600.0, Duration::hours(6));
/// let w = oracle.weight(&rates, Time(100), NodeId(0), NodeId(2));
/// assert!(w > 0.0);
/// // Self-weight is always 1.
/// assert_eq!(oracle.weight(&rates, Time(100), NodeId(1), NodeId(1)), 1.0);
/// ```
#[derive(Debug)]
pub struct PathOracle {
    horizon: f64,
    refresh: Duration,
    tables: Vec<Option<(Time, PathTable)>>,
}

impl PathOracle {
    /// Creates an oracle for `nodes` nodes evaluating path weights at
    /// `horizon` seconds and refreshing cached tables every `refresh`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `horizon` is not finite and positive.
    pub fn new(nodes: usize, horizon: f64, refresh: Duration) -> Self {
        assert!(nodes > 0, "oracle needs at least one node");
        assert!(
            horizon.is_finite() && horizon > 0.0,
            "horizon must be finite and positive, got {horizon}"
        );
        PathOracle {
            horizon,
            refresh,
            tables: (0..nodes).map(|_| None).collect(),
        }
    }

    /// The horizon `T` used for path weights.
    pub fn horizon(&self) -> f64 {
        self.horizon
    }

    /// The path table from `source`, recomputed from `rates` if the
    /// cached copy is older than the refresh interval.
    pub fn table(&mut self, rates: &RateTable, now: Time, source: NodeId) -> &PathTable {
        let slot = &mut self.tables[source.index()];
        let stale = match slot {
            Some((computed, _)) => now.saturating_since(*computed) >= self.refresh,
            None => true,
        };
        if stale {
            let graph = ContactGraph::from_rate_table(rates, now);
            *slot = Some((now, shortest_paths(&graph, source, self.horizon)));
        }
        &slot.as_ref().expect("just computed").1
    }

    /// The best-path weight from `source` to `dest` (1 if equal,
    /// 0 if unreachable).
    pub fn weight(&mut self, rates: &RateTable, now: Time, source: NodeId, dest: NodeId) -> f64 {
        if source == dest {
            return 1.0;
        }
        self.table(rates, now, source).weight_to(dest)
    }

    /// Drops every cached table (e.g. after a configuration change).
    pub fn invalidate(&mut self) {
        for slot in &mut self.tables {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates_line() -> RateTable {
        let mut r = RateTable::new(4, Time::ZERO);
        for t in 1..=5u64 {
            r.record(NodeId(0), NodeId(1), Time(t * 100));
            r.record(NodeId(1), NodeId(2), Time(t * 100));
            r.record(NodeId(2), NodeId(3), Time(t * 100));
        }
        r
    }

    #[test]
    fn weight_decreases_with_distance() {
        let rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let now = Time(1000);
        let w1 = o.weight(&rates, now, NodeId(0), NodeId(1));
        let w2 = o.weight(&rates, now, NodeId(0), NodeId(2));
        let w3 = o.weight(&rates, now, NodeId(0), NodeId(3));
        assert!(w1 > w2 && w2 > w3 && w3 > 0.0);
    }

    #[test]
    fn cache_hit_reuses_table_until_refresh() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let w_before = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        // Add many more contacts; within the refresh window the cached
        // table must still be served.
        for t in 6..=50u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 100));
        }
        let w_cached = o.weight(&rates, Time(1500), NodeId(0), NodeId(1));
        assert_eq!(w_before, w_cached);
        // After the refresh interval the new rates are picked up.
        let w_fresh = o.weight(&rates, Time(1000 + 3600), NodeId(0), NodeId(1));
        assert!(w_fresh > w_cached);
    }

    #[test]
    fn invalidate_forces_recompute() {
        let mut rates = rates_line();
        let mut o = PathOracle::new(4, 3600.0, Duration::hours(1));
        let w0 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        for t in 6..=50u64 {
            rates.record(NodeId(0), NodeId(1), Time(t * 10));
        }
        o.invalidate();
        let w1 = o.weight(&rates, Time(1000), NodeId(0), NodeId(1));
        assert!(w1 > w0);
    }

    #[test]
    fn self_weight_is_one_without_computation() {
        let rates = RateTable::new(2, Time::ZERO);
        let mut o = PathOracle::new(2, 100.0, Duration::hours(1));
        assert_eq!(o.weight(&rates, Time(0), NodeId(1), NodeId(1)), 1.0);
    }
}
