//! Simulation metrics — the three evaluation metrics of §VI plus
//! bookkeeping counters.

use dtn_core::time::{Duration, Time};

/// One periodic snapshot of global cache occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSample {
    /// When the sample was taken.
    pub at: Time,
    /// Total cached copies across all nodes (one item cached at five
    /// nodes counts five).
    pub copies: u64,
    /// Distinct live data items cached anywhere.
    pub distinct: u64,
    /// Total cached bytes across all nodes.
    pub bytes: u64,
}

/// Aggregated results of one simulation run.
///
/// The paper's three metrics map to [`success_ratio`](Metrics::success_ratio)
/// ("successful ratio"), [`avg_delay`](Metrics::avg_delay) ("data access
/// delay") and [`avg_copies_per_item`](Metrics::avg_copies_per_item)
/// ("caching overhead").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Queries issued during the measured phase.
    pub queries_issued: u64,
    /// Queries satisfied before their time constraint.
    pub queries_satisfied: u64,
    /// Sum of response delays over satisfied queries, in seconds.
    pub total_delay_secs: u64,
    /// Data items generated.
    pub data_generated: u64,
    /// Bytes successfully transmitted over contacts.
    pub bytes_transmitted: u64,
    /// Transmissions rejected because the contact's capacity was spent.
    pub transfers_rejected: u64,
    /// Cache-replacement operations (items moved/swapped between caches).
    pub replacement_ops: u64,
    /// Deliveries for queries that were already satisfied.
    pub duplicate_deliveries: u64,
    /// Deliveries that arrived after the query expired.
    pub late_deliveries: u64,
    /// Contacts dropped by fault injection
    /// (`SimConfig::contact_loss_probability`).
    pub contacts_lost: u64,
    /// Periodic cache-occupancy samples.
    pub samples: Vec<CacheSample>,
    /// Individual response delays (seconds) of satisfied queries, in
    /// satisfaction order — enables distribution analysis beyond the
    /// paper's mean.
    ///
    /// For large runs this vector is superseded by [`delay_hist`]
    /// (alloc-free, fixed memory): cap its growth with
    /// `SimConfig::max_delay_samples` and enable the histogram with
    /// `SimConfig::delay_histogram` instead.
    ///
    /// [`delay_hist`]: Metrics::delay_hist
    pub delays_secs: Vec<u64>,
    /// Fixed-bucket response-delay histogram, populated when
    /// `SimConfig::delay_histogram` is set. Keeps the exact count and
    /// sum, so [`avg_delay_secs_f64`](Metrics::avg_delay_secs_f64) stays
    /// exact even when `delays_secs` is capped.
    pub delay_hist: Option<dtn_core::hist::Histogram>,
}

impl Metrics {
    /// Fraction of issued queries satisfied in time; 0 if none issued.
    pub fn success_ratio(&self) -> f64 {
        if self.queries_issued == 0 {
            0.0
        } else {
            self.queries_satisfied as f64 / self.queries_issued as f64
        }
    }

    /// Mean response delay over satisfied queries, floored to whole
    /// seconds by the `Duration` representation. Prefer
    /// [`avg_delay_secs_f64`](Metrics::avg_delay_secs_f64) for plotting.
    pub fn avg_delay(&self) -> Duration {
        match self.total_delay_secs.checked_div(self.queries_satisfied) {
            None => Duration::ZERO,
            Some(mean) => Duration(mean),
        }
    }

    /// Exact mean response delay in fractional seconds; 0 if no query
    /// was satisfied.
    ///
    /// When the delay histogram is enabled the mean is derived from its
    /// exact running sum/count (identical by construction); otherwise it
    /// is `total_delay_secs / queries_satisfied` in floating point —
    /// either way, no integer truncation.
    pub fn avg_delay_secs_f64(&self) -> f64 {
        if let Some(hist) = &self.delay_hist {
            if hist.count() > 0 {
                return hist.mean().unwrap_or(0.0);
            }
        }
        if self.queries_satisfied == 0 {
            0.0
        } else {
            self.total_delay_secs as f64 / self.queries_satisfied as f64
        }
    }

    /// Mean response delay in fractional hours (the unit of Fig. 10–13).
    pub fn avg_delay_hours(&self) -> f64 {
        self.avg_delay_secs_f64() / 3600.0
    }

    /// Mean cached copies per distinct live item, averaged over samples
    /// that saw at least one cached item — the "caching overhead" of
    /// Fig. 10(c)/11(c)/13(c).
    pub fn avg_copies_per_item(&self) -> f64 {
        let ratios: Vec<f64> = self
            .samples
            .iter()
            .filter(|s| s.distinct > 0)
            .map(|s| s.copies as f64 / s.distinct as f64)
            .collect();
        if ratios.is_empty() {
            0.0
        } else {
            ratios.iter().sum::<f64>() / ratios.len() as f64
        }
    }

    /// Bytes transmitted per satisfied query — the network cost of one
    /// successful data access (§V-C's "wasted bandwidth" shows up
    /// here). 0 if nothing was satisfied.
    pub fn bytes_per_satisfied_query(&self) -> f64 {
        if self.queries_satisfied == 0 {
            0.0
        } else {
            self.bytes_transmitted as f64 / self.queries_satisfied as f64
        }
    }

    /// Whether `delays_secs` was truncated by `SimConfig::max_delay_samples`
    /// — i.e. fewer individual samples were kept than queries satisfied.
    /// When true, statistics computed from the raw vector describe only
    /// the *first* `delays_secs.len()` satisfied queries (a biased
    /// prefix, not a random sample) and should be labelled "sampled".
    pub fn delay_samples_capped(&self) -> bool {
        (self.delays_secs.len() as u64) < self.queries_satisfied
    }

    /// The `q`-quantile of the response-delay distribution (0 ≤ q ≤ 1),
    /// or `None` if no query was satisfied.
    ///
    /// When `delays_secs` holds every satisfied query the quantile is
    /// exact (sorted-sample). When the vector was capped by
    /// `SimConfig::max_delay_samples` the sample prefix is biased
    /// toward early deliveries, so the quantile is instead answered
    /// from the full-population [`delay_hist`](Metrics::delay_hist)
    /// at bucket resolution; with the histogram disabled too, the
    /// capped prefix is used as a last resort — check
    /// [`delay_samples_capped`](Metrics::delay_samples_capped) and
    /// label such values "sampled".
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn delay_quantile(&self, q: f64) -> Option<Duration> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.delay_samples_capped() {
            if let Some(hist) = &self.delay_hist {
                if hist.count() > 0 {
                    return hist.quantile_bucket(q).map(Duration);
                }
            }
        }
        if self.delays_secs.is_empty() {
            return None;
        }
        let mut sorted = self.delays_secs.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(Duration(sorted[idx]))
    }

    /// Median response delay, or `None` if no query was satisfied.
    /// Follows the [`delay_quantile`](Metrics::delay_quantile) routing:
    /// exact when uncapped, histogram-backed when capped.
    pub fn median_delay(&self) -> Option<Duration> {
        self.delay_quantile(0.5)
    }

    /// Mean replacement operations per generated item — the
    /// "cache replacement overhead" of Fig. 12(c).
    pub fn avg_replacements_per_item(&self) -> f64 {
        if self.data_generated == 0 {
            0.0
        } else {
            self.replacement_ops as f64 / self.data_generated as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::default();
        assert_eq!(m.success_ratio(), 0.0);
        assert_eq!(m.avg_delay(), Duration::ZERO);
        assert_eq!(m.avg_delay_hours(), 0.0);
        assert_eq!(m.avg_copies_per_item(), 0.0);
        assert_eq!(m.avg_replacements_per_item(), 0.0);
    }

    #[test]
    fn ratios_compute_correctly() {
        let m = Metrics {
            queries_issued: 10,
            queries_satisfied: 4,
            total_delay_secs: 4 * 7200,
            data_generated: 8,
            replacement_ops: 16,
            ..Metrics::default()
        };
        assert!((m.success_ratio() - 0.4).abs() < 1e-12);
        assert_eq!(m.avg_delay(), Duration::hours(2));
        assert!((m.avg_delay_hours() - 2.0).abs() < 1e-12);
        assert!((m.avg_replacements_per_item() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn avg_delay_secs_f64_is_not_truncated() {
        let m = Metrics {
            queries_satisfied: 3,
            total_delay_secs: 10, // 3.333… s — `avg_delay()` floors to 3 s
            ..Metrics::default()
        };
        assert_eq!(m.avg_delay(), Duration(3));
        assert!((m.avg_delay_secs_f64() - 10.0 / 3.0).abs() < 1e-12);
        assert!((m.avg_delay_hours() - 10.0 / 3.0 / 3600.0).abs() < 1e-15);
    }

    #[test]
    fn avg_delay_prefers_histogram_when_populated() {
        let mut hist = dtn_core::hist::Histogram::new(1_000, 4);
        hist.record(7);
        hist.record(8);
        let m = Metrics {
            // Deliberately inconsistent counters: the histogram wins.
            queries_satisfied: 1,
            total_delay_secs: 100,
            delay_hist: Some(hist),
            ..Metrics::default()
        };
        assert_eq!(m.avg_delay_secs_f64(), 7.5);

        // An enabled-but-empty histogram falls back to the counters.
        let m = Metrics {
            queries_satisfied: 2,
            total_delay_secs: 9,
            delay_hist: Some(dtn_core::hist::Histogram::new(1_000, 4)),
            ..Metrics::default()
        };
        assert_eq!(m.avg_delay_secs_f64(), 4.5);
    }

    #[test]
    fn delay_quantiles() {
        let m = Metrics {
            delays_secs: vec![100, 400, 200, 300, 500],
            ..Metrics::default()
        };
        assert_eq!(m.delay_quantile(0.0), Some(Duration(100)));
        assert_eq!(m.median_delay(), Some(Duration(300)));
        assert_eq!(m.delay_quantile(1.0), Some(Duration(500)));
        assert_eq!(Metrics::default().median_delay(), None);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn out_of_range_quantile_panics() {
        let _ = Metrics::default().delay_quantile(1.5);
    }

    #[test]
    fn capped_quantiles_route_through_the_histogram() {
        // 20 satisfied queries, but only the first 3 (smallest) delays
        // survived the cap: the raw vector would report a wildly
        // optimistic median.
        let mut hist = dtn_core::hist::Histogram::new(100, 10);
        for d in (0..20u64).map(|i| i * 50) {
            hist.record(d);
        }
        let m = Metrics {
            queries_satisfied: 20,
            delays_secs: vec![0, 50, 100],
            delay_hist: Some(hist.clone()),
            ..Metrics::default()
        };
        assert!(m.delay_samples_capped());
        assert_eq!(
            m.delay_quantile(0.5).map(|d| d.0),
            hist.quantile_bucket(0.5),
            "capped quantile must come from the full-population histogram"
        );
        assert_eq!(m.median_delay(), Some(Duration(400)));

        // Without the histogram the capped prefix is the fallback —
        // callers label it via delay_samples_capped().
        let sampled = Metrics {
            queries_satisfied: 20,
            delays_secs: vec![0, 50, 100],
            ..Metrics::default()
        };
        assert!(sampled.delay_samples_capped());
        assert_eq!(sampled.median_delay(), Some(Duration(50)));

        // Uncapped metrics keep the exact sorted-sample path even with
        // a histogram present (sub-bucket resolution).
        let exact = Metrics {
            queries_satisfied: 3,
            delays_secs: vec![7, 11, 13],
            delay_hist: Some(dtn_core::hist::Histogram::new(100, 10)),
            ..Metrics::default()
        };
        assert!(!exact.delay_samples_capped());
        assert_eq!(exact.median_delay(), Some(Duration(11)));
    }

    #[test]
    fn copies_per_item_averages_nonempty_samples() {
        let m = Metrics {
            samples: vec![
                CacheSample {
                    at: Time(0),
                    copies: 10,
                    distinct: 5,
                    bytes: 0,
                },
                CacheSample {
                    at: Time(1),
                    copies: 0,
                    distinct: 0,
                    bytes: 0,
                },
                CacheSample {
                    at: Time(2),
                    copies: 12,
                    distinct: 3,
                    bytes: 0,
                },
            ],
            ..Metrics::default()
        };
        // (2 + 4) / 2 samples with data
        assert!((m.avg_copies_per_item() - 3.0).abs() < 1e-12);
    }
}
