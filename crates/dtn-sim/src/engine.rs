//! The discrete-event simulation engine.
//!
//! The engine replays a [`ContactTrace`] in time order, interleaved with
//! externally supplied workload events (data generation and queries,
//! produced by the `dtn-workload` crate). A pluggable [`Scheme`] receives
//! hooks for every event and implements the actual data-access protocol;
//! the engine provides the substrate the paper assumes:
//!
//! - online pairwise contact-rate estimation ("a node updates its contact
//!   rates with other nodes in real time", §VI-A),
//! - bandwidth-limited transmission within contact windows (2.1 Mb/s
//!   Bluetooth EDR by default),
//! - per-node buffer capacities uniformly distributed in a configured
//!   range,
//! - query bookkeeping (first in-time delivery wins; duplicates and late
//!   arrivals are counted separately),
//! - periodic cache-occupancy sampling for the caching-overhead metric.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dtn_core::ids::{NodeId, QueryId};
use dtn_core::rate::RateTable;
use dtn_core::time::{Duration, Time};
use dtn_trace::trace::{Contact, ContactTrace};

use crate::audit::{AuditLaw, AuditReport, AuditState, AuditViolation};
use crate::message::{DataItem, Query};
use crate::metrics::{CacheSample, Metrics};
use crate::probe::{Probe, ProbeEvent, ProbeSink};
use crate::profiler::{Phase, ProfileReport, Profiler};

/// Bytes per megabit, for converting the paper's "Mb" figures.
pub const MEGABIT_BYTES: u64 = 125_000;

/// Converts megabits to bytes (the paper quotes sizes in Mb).
///
/// # Example
///
/// ```
/// use dtn_sim::engine::megabits;
/// assert_eq!(megabits(100), 12_500_000);
/// ```
pub const fn megabits(mb: u64) -> u64 {
    mb * MEGABIT_BYTES
}

/// Engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Link capacity in bytes/second. Default: 2.1 Mb/s (Bluetooth EDR,
    /// §VI-A).
    pub bandwidth_bytes_per_sec: u64,
    /// Size of a query message in bytes (queries are tiny control
    /// messages). Default: 1 KiB.
    pub query_size_bytes: u64,
    /// Per-node buffer capacity is drawn uniformly from this inclusive
    /// range. Default: 200–600 Mb (§VI-A).
    pub buffer_range: (u64, u64),
    /// Interval between cache-occupancy samples. Default: 6 h.
    pub sample_interval: Duration,
    /// Probability that a contact is lost entirely (radio failure,
    /// interference): the nodes never learn it happened — no rate
    /// update, no scheme hook. Default 0.
    pub contact_loss_probability: f64,
    /// Interval between [`Scheme::on_epoch`] maintenance callbacks.
    /// `None` (the default) never fires the hook, making the epoch
    /// runtime a strict no-op.
    pub epoch_interval: Option<Duration>,
    /// Overrides the scheme's cached-path refresh interval when set.
    /// The engine itself does not consume this; harnesses forward it to
    /// scheme configuration (e.g. `NetworkSetup::path_refresh` in
    /// `dtn-cache`). Default `None` (use the scheme's own setting).
    pub path_refresh: Option<Duration>,
    /// Caps [`Metrics::delays_secs`] at this many samples. Default:
    /// `Some(65_536)` — enough for exact percentiles on every paper
    /// workload while keeping city-scale runs from growing an unbounded
    /// vector; set `None` to keep every delay. Runs needing full delay
    /// distributions past the cap should read the delay *histogram*
    /// instead (see `delay_histogram`); `total_delay_secs` and the
    /// exact mean are unaffected by the cap.
    pub max_delay_samples: Option<usize>,
    /// When set, [`Metrics::delay_hist`] collects satisfied-query
    /// delays into `(bucket_width_secs, bucket_count)` fixed buckets —
    /// an alloc-free alternative to the unbounded `delays_secs` vector.
    /// Default `None` (field stays `None`, metric comparisons across
    /// schemes are unaffected).
    pub delay_histogram: Option<(u64, usize)>,
    /// Runs the invariant audit (see [`crate::audit`]) after every
    /// contact and epoch, accumulating an [`AuditReport`] readable via
    /// [`Simulator::audit_report`]. Default `false`: the engine carries
    /// a single `None` and audits cost one predicted branch per event.
    pub audit: bool,
    /// Collects a hierarchical wall-clock phase profile (see
    /// [`crate::profiler`]), readable via [`Simulator::profile_report`].
    /// Default `false`: the engine carries a single `None` and every
    /// span site costs one predicted branch — same zero-cost discipline
    /// as the probe sink and the audit slot.
    pub profile: bool,
    /// Emits a progress heartbeat to stderr every this many dispatched
    /// contacts (simulation progress, contacts/s, peak RSS, ETA) — for
    /// watching long city-scale runs. Default `None`: off, one
    /// predicted branch per contact.
    pub heartbeat_every_contacts: Option<u64>,
    /// Worker threads for the deterministic intra-run parallel executor.
    /// `0` or `1` (the default) runs the classic serial event loop
    /// untouched; `n > 1` switches [`Simulator::run_until`] to the
    /// windowed executor: contacts are gathered into bounded windows,
    /// batched by endpoint disjointness, planned in parallel through
    /// [`Scheme::plan_contacts`], and committed in original trace order
    /// — metrics, probe streams (modulo `parallel_window` events) and
    /// audit sweeps are bit-identical to the serial engine.
    pub threads: usize,
    /// RNG seed for buffer assignment and scheme randomness.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_bytes_per_sec: 262_500, // 2.1 Mb/s
            query_size_bytes: 1024,
            buffer_range: (megabits(200), megabits(600)),
            sample_interval: Duration::hours(6),
            contact_loss_probability: 0.0,
            epoch_interval: None,
            path_refresh: None,
            max_delay_samples: Some(65_536),
            delay_histogram: None,
            audit: false,
            profile: false,
            heartbeat_every_contacts: None,
            threads: 1,
            seed: 0,
        }
    }
}

/// One firing of the periodic maintenance channel (see
/// [`SimConfig::epoch_interval`] and [`Scheme::on_epoch`]).
///
/// The clock only advances at events, so a due epoch fires at the next
/// event rather than being back-dated; `at` is the actual firing time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Epoch {
    /// Zero-based count of epochs fired so far in this run.
    pub index: u64,
    /// The simulation time at which the epoch fired.
    pub at: Time,
}

/// A workload event to inject into the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadEvent {
    /// `source` generates a new data item at `item.created_at`.
    GenerateData {
        /// The item to create (its `created_at` is the event time).
        item: DataItem,
    },
    /// `requester` asks for `data` with time constraint `constraint`.
    IssueQuery {
        /// When the query is issued.
        at: Time,
        /// The querying node.
        requester: NodeId,
        /// The requested item.
        data: dtn_core::ids::DataId,
        /// The query time constraint `T_q`.
        constraint: Duration,
    },
}

impl WorkloadEvent {
    /// The instant the event fires.
    pub fn at(&self) -> Time {
        match self {
            WorkloadEvent::GenerateData { item } => item.created_at,
            WorkloadEvent::IssueQuery { at, .. } => *at,
        }
    }
}

/// Global cache occupancy reported by a scheme when sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total cached copies across all nodes.
    pub copies: u64,
    /// Distinct live items cached anywhere.
    pub distinct: u64,
    /// Total cached bytes.
    pub bytes: u64,
}

/// Outcome of reporting a data delivery to the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryOutcome {
    /// First in-time delivery; the query is now satisfied.
    Accepted {
        /// Response delay experienced by the requester.
        delay: Duration,
    },
    /// The query was already satisfied; this copy is redundant.
    Duplicate,
    /// The query expired before this delivery.
    Late,
    /// The query id was never issued.
    Unknown,
}

/// A data-access scheme plugged into the engine.
///
/// All protocol state (per-node caches, relay queues, pending queries)
/// lives inside the scheme; the engine only supplies events and the
/// transmission/bookkeeping services on [`SimCtx`].
pub trait Scheme {
    /// A node has generated a new data item (it holds the item locally).
    fn on_data_generated(&mut self, ctx: &mut SimCtx<'_>, item: DataItem);

    /// A node has issued a query.
    fn on_query_issued(&mut self, ctx: &mut SimCtx<'_>, query: Query);

    /// Two nodes are in contact; `ctx.try_transmit` is available and
    /// draws from this contact's capacity.
    fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact);

    /// Periodic maintenance callback, fired every
    /// [`SimConfig::epoch_interval`] (never, by default). Epochs fire
    /// *between* events — there is no contact, so `ctx.try_transmit`
    /// must not be called here. Schemes use this for background work
    /// such as re-electing central nodes from the live rate table.
    fn on_epoch(&mut self, _ctx: &mut SimCtx<'_>, _epoch: Epoch) {}

    /// Reports current global cache occupancy for the overhead metric.
    fn cache_stats(&self, now: Time) -> CacheStats;

    /// Re-derives the scheme's canonical state and reports every broken
    /// conservation law into `report`. Called after every contact and
    /// epoch when [`SimConfig::audit`] is on; the default does nothing,
    /// so schemes without redundant state need no implementation. See
    /// [`crate::audit`] for the laws.
    fn audit(&self, _now: Time, _report: &mut AuditReport) {}

    /// Parallel plan phase of the windowed executor: `batch` is one
    /// endpoint-disjoint set of upcoming contacts, about to be committed
    /// in trace order. The scheme may precompute pure, read-only work
    /// for the batch's endpoints (e.g. warming per-source path caches on
    /// [`PlanCtx::threads`] worker threads) but must not change any
    /// observable state — `PlanCtx` deliberately exposes no RNG, no
    /// metrics and no transmission, so purity holds by construction.
    /// Only called when [`SimConfig::threads`] `> 1`; the default does
    /// nothing.
    fn plan_contacts(&mut self, _plan: &PlanCtx<'_>, _batch: &[Contact]) {}
}

/// Read-only view handed to [`Scheme::plan_contacts`]: enough to
/// precompute path searches, nothing that could perturb the simulation.
pub struct PlanCtx<'a> {
    rates: &'a RateTable,
    now: Time,
    threads: usize,
}

impl PlanCtx<'_> {
    /// The live pairwise contact-rate table (as of the window start —
    /// the commits of this window have not happened yet).
    pub fn rate_table(&self) -> &RateTable {
        self.rates
    }

    /// The start time of the window's first contact.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Worker threads the plan phase may use (always `> 1` when the
    /// hook fires).
    pub fn threads(&self) -> usize {
        self.threads
    }
}

/// Internal record of an issued query.
#[derive(Debug, Clone, Copy)]
struct QueryRecord {
    issued_at: Time,
    expires_at: Time,
    satisfied_at: Option<Time>,
}

/// Engine state shared with schemes through [`SimCtx`].
struct Shared {
    now: Time,
    rate_table: RateTable,
    metrics: Metrics,
    rng: StdRng,
    buffer_capacities: Vec<u64>,
    queries: Vec<QueryRecord>, // indexed by QueryId
    query_size: u64,
    link_budget: Option<u64>, // bytes left in the current contact
    max_delay_samples: Option<usize>,
    probe: ProbeSink,
    /// `Some` iff `SimConfig::audit` was set; boxed so the audit-off
    /// hot path carries one machine word.
    audit: Option<Box<AuditState>>,
    /// `Some` iff `SimConfig::profile` was set; same one-machine-word
    /// discipline as the audit slot.
    profiler: Option<Box<Profiler>>,
}

/// The services a [`Scheme`] can call while handling an event.
pub struct SimCtx<'a> {
    shared: &'a mut Shared,
}

impl SimCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.shared.now
    }

    /// The engine's deterministic RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.shared.rng
    }

    /// The live pairwise contact-rate table (updated on every contact).
    pub fn rate_table(&self) -> &RateTable {
        &self.shared.rate_table
    }

    /// Number of nodes in the simulated population.
    pub fn node_count(&self) -> usize {
        self.shared.buffer_capacities.len()
    }

    /// The caching-buffer capacity assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn buffer_capacity(&self, node: NodeId) -> u64 {
        self.shared.buffer_capacities[node.index()]
    }

    /// The configured size of a query message in bytes.
    pub fn query_size(&self) -> u64 {
        self.shared.query_size
    }

    /// The probe sink: schemes emit [`ProbeEvent`]s through this. With
    /// no probe installed (the default) an emission is one predicted
    /// branch and the event is never constructed.
    pub fn probe(&mut self) -> &mut ProbeSink {
        &mut self.shared.probe
    }

    /// Whether a probe is installed — for gating instrumentation work
    /// that a lazy [`ProbeSink::emit`] closure cannot express.
    pub fn probe_enabled(&self) -> bool {
        self.shared.probe.is_enabled()
    }

    /// Opens a profiler span for `phase` (no-op unless
    /// [`SimConfig::profile`] is set). Schemes bracket their own
    /// heavyweight phases — knapsack solves, maintenance rebuilds —
    /// with this and [`SimCtx::profile_exit`]; calls must balance on
    /// every path, including early returns.
    #[inline]
    pub fn profile_enter(&mut self, phase: Phase) {
        if let Some(p) = &mut self.shared.profiler {
            p.enter(phase);
        }
    }

    /// Closes the innermost open profiler span (no-op when profiling is
    /// off).
    #[inline]
    pub fn profile_exit(&mut self) {
        if let Some(p) = &mut self.shared.profiler {
            p.exit();
        }
    }

    /// Attempts to transmit `bytes` over the current contact, consuming
    /// link capacity. Returns `false` (and counts a rejected transfer)
    /// if the contact's remaining capacity is insufficient.
    ///
    /// # Panics
    ///
    /// Panics if called outside a contact hook — transmission without a
    /// contact is impossible in a DTN and indicates a scheme bug.
    pub fn try_transmit(&mut self, bytes: u64) -> bool {
        let at = self.shared.now;
        let budget = self
            .shared
            .link_budget
            .as_mut()
            .expect("try_transmit is only valid inside on_contact");
        if *budget >= bytes {
            *budget -= bytes;
            self.shared.metrics.bytes_transmitted += bytes;
            self.shared
                .probe
                .emit(|| ProbeEvent::TransmitAccepted { at, bytes });
            true
        } else {
            self.shared.metrics.transfers_rejected += 1;
            self.shared
                .probe
                .emit(|| ProbeEvent::TransmitRejected { at, bytes });
            false
        }
    }

    /// Remaining transmission capacity of the current contact, if inside
    /// a contact hook.
    pub fn remaining_link_capacity(&self) -> Option<u64> {
        self.shared.link_budget
    }

    /// Reports that the requester of `query` received the data now.
    ///
    /// Only the first in-time delivery satisfies the query; duplicates
    /// and late arrivals are tallied separately (they are the "wasted
    /// bandwidth" §V-C talks about).
    pub fn mark_delivered(&mut self, query: QueryId) -> DeliveryOutcome {
        let now = self.shared.now;
        let outcome = 'classify: {
            let Some(rec) = self.shared.queries.get_mut(query.0 as usize) else {
                break 'classify DeliveryOutcome::Unknown;
            };
            if rec.satisfied_at.is_some() {
                self.shared.metrics.duplicate_deliveries += 1;
                break 'classify DeliveryOutcome::Duplicate;
            }
            if now >= rec.expires_at {
                self.shared.metrics.late_deliveries += 1;
                break 'classify DeliveryOutcome::Late;
            }
            rec.satisfied_at = Some(now);
            let delay = now - rec.issued_at;
            self.shared.metrics.queries_satisfied += 1;
            self.shared.metrics.total_delay_secs += delay.as_secs();
            if self
                .shared
                .max_delay_samples
                .is_none_or(|cap| self.shared.metrics.delays_secs.len() < cap)
            {
                self.shared.metrics.delays_secs.push(delay.as_secs());
            }
            if let Some(hist) = &mut self.shared.metrics.delay_hist {
                hist.record(delay.as_secs());
            }
            DeliveryOutcome::Accepted { delay }
        };
        if let Some(audit) = &mut self.shared.audit {
            audit.deliveries_reported += 1;
            if outcome == DeliveryOutcome::Unknown {
                audit.unknown_deliveries += 1;
            }
        }
        self.shared.probe.emit(|| ProbeEvent::Delivery {
            at: now,
            query,
            outcome,
        });
        outcome
    }

    /// Whether `query` is still unsatisfied and unexpired.
    pub fn query_is_open(&self, query: QueryId) -> bool {
        self.shared
            .queries
            .get(query.0 as usize)
            .is_some_and(|r| r.satisfied_at.is_none() && self.shared.now < r.expires_at)
    }

    /// Counts `count` cache-replacement operations (Fig. 12(c) metric).
    pub fn note_replacements(&mut self, count: u64) {
        self.shared.metrics.replacement_ops += count;
    }

    /// Splits the context into a [`LinkAccess`] that exposes the rate
    /// table and the transmit budget *simultaneously* — needed by
    /// routing code that reads path weights while charging transfers.
    ///
    /// # Panics
    ///
    /// Panics if called outside a contact hook.
    pub fn link_access(&mut self) -> LinkAccess<'_> {
        assert!(
            self.shared.link_budget.is_some(),
            "link_access is only valid inside on_contact"
        );
        LinkAccess {
            rates: &self.shared.rate_table,
            budget: self
                .shared
                .link_budget
                .as_mut()
                .expect("checked just above"),
            metrics: &mut self.shared.metrics,
            now: self.shared.now,
            probe: &mut self.shared.probe,
        }
    }
}

/// Simultaneous access to the rate table and the contact's transmit
/// budget (split borrow of the engine state). Implements [`Link`].
pub struct LinkAccess<'a> {
    rates: &'a RateTable,
    budget: &'a mut u64,
    metrics: &'a mut Metrics,
    now: Time,
    probe: &'a mut ProbeSink,
}

/// A transmission medium: pairwise rates plus a budgeted transmit
/// operation. Implemented by [`LinkAccess`]; test code can provide
/// stubs.
pub trait Link {
    /// The live pairwise contact-rate table.
    fn rate_table(&self) -> &RateTable;

    /// Attempts to transmit `bytes`, consuming link capacity.
    fn try_transmit(&mut self, bytes: u64) -> bool;
}

impl Link for LinkAccess<'_> {
    fn rate_table(&self) -> &RateTable {
        self.rates
    }

    fn try_transmit(&mut self, bytes: u64) -> bool {
        let at = self.now;
        if *self.budget >= bytes {
            *self.budget -= bytes;
            self.metrics.bytes_transmitted += bytes;
            self.probe
                .emit(|| ProbeEvent::TransmitAccepted { at, bytes });
            true
        } else {
            self.metrics.transfers_rejected += 1;
            self.probe
                .emit(|| ProbeEvent::TransmitRejected { at, bytes });
            false
        }
    }
}

/// Where the simulator's contacts come from: a cursor over a
/// time-ordered contact sequence.
///
/// Implemented by [`TraceSource`] (a materialized [`ContactTrace`] —
/// the classic path) and [`StreamSource`] (any time-ordered contact
/// iterator, e.g. `SyntheticTraceBuilder::stream`, which is what lets
/// city-scale populations run without the trace ever existing in RAM).
pub trait ContactSource {
    /// Number of nodes in the population.
    fn node_count(&self) -> usize;

    /// The observation end: the simulation's natural stopping time.
    /// Every contact starts before or at it.
    fn end_time(&self) -> Time;

    /// The horizon if the source knows one, `None` for open-ended
    /// sources (e.g. a live [`StreamSource`] whose end is unknown).
    /// Progress reporting must not extrapolate an ETA from `None`.
    fn known_end(&self) -> Option<Time> {
        Some(self.end_time())
    }

    /// The next contact, without consuming it. Repeated calls return
    /// the same contact until [`ContactSource::advance`].
    fn peek(&mut self) -> Option<Contact>;

    /// Consumes the contact last returned by [`ContactSource::peek`].
    fn advance(&mut self);
}

/// A [`ContactSource`] replaying a borrowed, materialized
/// [`ContactTrace`].
#[derive(Debug)]
pub struct TraceSource<'t> {
    trace: &'t ContactTrace,
    next: usize,
}

impl<'t> TraceSource<'t> {
    /// Wraps a trace as a contact source (cursor at the beginning).
    pub fn new(trace: &'t ContactTrace) -> Self {
        TraceSource { trace, next: 0 }
    }
}

impl ContactSource for TraceSource<'_> {
    fn node_count(&self) -> usize {
        self.trace.node_count()
    }

    fn end_time(&self) -> Time {
        Time(self.trace.duration().as_secs())
    }

    fn peek(&mut self) -> Option<Contact> {
        self.trace.contacts().get(self.next).copied()
    }

    fn advance(&mut self) {
        self.next += 1;
    }
}

/// A [`ContactSource`] pulling from a time-ordered contact iterator —
/// memory stays whatever the iterator itself holds, regardless of how
/// many contacts flow through.
///
/// # Panics
///
/// Iteration panics if the iterator yields contacts with decreasing
/// start times: event-order violations would silently corrupt every
/// downstream metric, so they fail fast.
#[derive(Debug)]
pub struct StreamSource<I> {
    iter: I,
    nodes: usize,
    end: Time,
    open_ended: bool,
    pending: Option<Contact>,
    exhausted: bool,
    last_start: Time,
}

impl<I: Iterator<Item = Contact>> StreamSource<I> {
    /// Wraps a time-ordered contact iterator over `nodes` nodes
    /// observed for `duration`.
    pub fn new(iter: I, nodes: usize, duration: Duration) -> Self {
        StreamSource {
            iter,
            nodes,
            end: Time(duration.as_secs()),
            open_ended: false,
            pending: None,
            exhausted: false,
            last_start: Time::ZERO,
        }
    }

    /// Marks the stream as open-ended: `duration` remains the run
    /// bound for [`Simulator::run_to_end`], but it is *not* a known
    /// horizon — [`ContactSource::known_end`] answers `None`, so
    /// progress heartbeats report `eta=?` instead of extrapolating
    /// toward a bound the live stream may never reach.
    pub fn open_ended(mut self) -> Self {
        self.open_ended = true;
        self
    }
}

impl StreamSource<dtn_trace::synthetic::ContactStream> {
    /// Wraps a synthetic [`ContactStream`], taking the population size
    /// and observation length from the stream itself.
    ///
    /// [`ContactStream`]: dtn_trace::synthetic::ContactStream
    pub fn from_synthetic(stream: dtn_trace::synthetic::ContactStream) -> Self {
        let nodes = stream.node_count();
        let duration = stream.duration();
        StreamSource::new(stream, nodes, duration)
    }
}

impl<I: Iterator<Item = Contact>> ContactSource for StreamSource<I> {
    fn node_count(&self) -> usize {
        self.nodes
    }

    fn end_time(&self) -> Time {
        self.end
    }

    fn known_end(&self) -> Option<Time> {
        (!self.open_ended).then_some(self.end)
    }

    fn peek(&mut self) -> Option<Contact> {
        if self.pending.is_none() && !self.exhausted {
            self.pending = self.iter.next();
            match self.pending {
                Some(c) => {
                    assert!(
                        c.start >= self.last_start,
                        "contact stream must be time-ordered: {:?} after {:?}",
                        c.start,
                        self.last_start
                    );
                    self.last_start = c.start;
                }
                None => self.exhausted = true,
            }
        }
        self.pending
    }

    fn advance(&mut self) {
        self.pending = None;
    }
}

/// The discrete-event simulator.
///
/// Generic over its [`ContactSource`]: [`Simulator::new`] replays a
/// borrowed [`ContactTrace`], [`Simulator::from_source`] accepts any
/// source — notably a [`StreamSource`] feeding contacts straight from
/// a generator, which is how 100k–1M-node populations run in `O(pairs)`
/// memory.
///
/// # Example
///
/// A trivial scheme that never does anything still produces metrics:
///
/// ```
/// use dtn_sim::engine::{CacheStats, Scheme, SimConfig, SimCtx, Simulator};
/// use dtn_sim::message::{DataItem, Query};
/// use dtn_trace::synthetic::SyntheticTraceBuilder;
/// use dtn_trace::trace::Contact;
/// use dtn_core::time::Time;
///
/// struct Idle;
/// impl Scheme for Idle {
///     fn on_data_generated(&mut self, _: &mut SimCtx<'_>, _: DataItem) {}
///     fn on_query_issued(&mut self, _: &mut SimCtx<'_>, _: Query) {}
///     fn on_contact(&mut self, _: &mut SimCtx<'_>, _: Contact) {}
///     fn cache_stats(&self, _: Time) -> CacheStats { CacheStats::default() }
/// }
///
/// let trace = SyntheticTraceBuilder::new(10).seed(1).build();
/// let mut sim = Simulator::new(&trace, Idle, SimConfig::default());
/// sim.run_to_end();
/// assert_eq!(sim.metrics().queries_issued, 0);
/// ```
pub struct Simulator<S, C> {
    source: C,
    scheme: S,
    shared: Shared,
    workload: Vec<WorkloadEvent>,
    next_workload: usize,
    next_sample: Time,
    sample_interval: Duration,
    next_epoch: Time,
    epoch_interval: Option<Duration>,
    epoch_index: u64,
    bandwidth: u64,
    contact_loss: f64,
    threads: usize,
    heartbeat: Option<Heartbeat>,
}

/// Progress-heartbeat state (see
/// [`SimConfig::heartbeat_every_contacts`]). Wall-clock anchors are
/// taken lazily at the first dispatched contact so configure/warm-up
/// phases don't distort the rate or the ETA.
struct Heartbeat {
    every: u64,
    contacts: u64,
    started_wall: Option<std::time::Instant>,
    started_sim: Time,
    last_wall: std::time::Instant,
    last_contacts: u64,
}

/// Formats the heartbeat ETA field. `-` before any simulated progress
/// (nothing to extrapolate from — and the naive formula would divide
/// by zero), `?` when the source has no known horizon (an open-ended
/// [`StreamSource`] — extrapolating toward `end_time()` there invents
/// an ETA for a bound the stream may never reach), otherwise wall
/// clock scaled by the remaining fraction of simulated time.
fn heartbeat_eta(
    wall_secs: f64,
    started_sim: u64,
    sim_now: u64,
    known_end: Option<Time>,
) -> String {
    let progressed = sim_now.saturating_sub(started_sim);
    if progressed == 0 {
        return "-".to_string();
    }
    match known_end {
        None => "?".to_string(),
        Some(end) => {
            let remaining = end.0.saturating_sub(sim_now);
            format!("{:.0}s", wall_secs * remaining as f64 / progressed as f64)
        }
    }
}

/// Formats the heartbeat progress field: `t=<now>s/<end>s (<pct>%)`
/// with a known horizon, `t=<now>s/?` without one (a percentage of an
/// unknown total would be meaningless).
fn heartbeat_progress(sim_now: u64, known_end: Option<Time>) -> String {
    match known_end {
        None => format!("t={sim_now}s/?"),
        Some(end) => {
            let pct = if end.0 > 0 {
                sim_now as f64 / end.0 as f64 * 100.0
            } else {
                100.0
            };
            format!("t={sim_now}s/{}s ({pct:.1}%)", end.0)
        }
    }
}

/// Maximum contacts gathered into one window of the parallel executor.
/// Bounds plan-phase memory (staged path tables) and keeps the commit
/// loop's rate-table view close to the plan's, so staged results rarely
/// outlive their snapshot.
const MAX_WINDOW: usize = 256;

impl<'t, S: Scheme> Simulator<S, TraceSource<'t>> {
    /// Creates a simulator over `trace` driving `scheme`.
    pub fn new(trace: &'t ContactTrace, scheme: S, config: SimConfig) -> Self {
        Simulator::from_source(TraceSource::new(trace), scheme, config)
    }
}

impl<S: Scheme, C: ContactSource> Simulator<S, C> {
    /// Creates a simulator over any [`ContactSource`] driving `scheme`.
    pub fn from_source(source: C, scheme: S, config: SimConfig) -> Self {
        assert!(
            config.bandwidth_bytes_per_sec > 0,
            "bandwidth must be positive"
        );
        assert!(
            config.buffer_range.0 <= config.buffer_range.1,
            "buffer range must be ordered"
        );
        assert!(
            (0.0..=1.0).contains(&config.contact_loss_probability),
            "contact loss must be a probability"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let buffer_capacities = (0..source.node_count())
            .map(|_| rng.gen_range(config.buffer_range.0..=config.buffer_range.1))
            .collect();
        let mut metrics = Metrics::default();
        if let Some((width, buckets)) = config.delay_histogram {
            metrics.delay_hist = Some(dtn_core::hist::Histogram::new(width, buckets));
        }
        let nodes = source.node_count();
        Simulator {
            source,
            scheme,
            shared: Shared {
                now: Time::ZERO,
                rate_table: RateTable::new(nodes, Time::ZERO),
                metrics,
                rng,
                buffer_capacities,
                queries: Vec::new(),
                query_size: config.query_size_bytes,
                link_budget: None,
                max_delay_samples: config.max_delay_samples,
                probe: ProbeSink::Noop,
                audit: config.audit.then(|| Box::new(AuditState::default())),
                profiler: config.profile.then(|| Box::new(Profiler::new())),
            },
            workload: Vec::new(),
            next_workload: 0,
            next_sample: Time::ZERO + config.sample_interval,
            sample_interval: config.sample_interval,
            next_epoch: config.epoch_interval.map_or(Time::ZERO, |i| Time::ZERO + i),
            epoch_interval: config.epoch_interval,
            epoch_index: 0,
            bandwidth: config.bandwidth_bytes_per_sec,
            contact_loss: config.contact_loss_probability,
            threads: config.threads,
            heartbeat: config.heartbeat_every_contacts.map(|every| Heartbeat {
                every: every.max(1),
                contacts: 0,
                started_wall: None,
                started_sim: Time::ZERO,
                last_wall: std::time::Instant::now(),
                last_contacts: 0,
            }),
        }
    }

    /// The scheme under simulation.
    pub fn scheme(&self) -> &S {
        &self.scheme
    }

    /// The contact source driving the simulation (e.g. to read an
    /// [`OverlaySource`]'s dropped-contact counter after a run).
    ///
    /// [`OverlaySource`]: crate::overlay::OverlaySource
    pub fn source(&self) -> &C {
        &self.source
    }

    /// Mutable access to the scheme (for configuration between phases).
    pub fn scheme_mut(&mut self) -> &mut S {
        &mut self.scheme
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.shared.now
    }

    /// The live contact-rate table.
    pub fn rate_table(&self) -> &RateTable {
        &self.shared.rate_table
    }

    /// Split borrow for online decision serving: the scheme (mutably,
    /// so it can hand out a `DecisionPoint` over its own oracle) plus
    /// the live rate table and current simulation time it needs to
    /// answer with the engine's exact state.
    pub fn decision_inputs(&mut self) -> (&mut S, &RateTable, Time) {
        (&mut self.scheme, &self.shared.rate_table, self.shared.now)
    }

    /// The buffer capacity assigned to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn buffer_capacity(&self, node: NodeId) -> u64 {
        self.shared.buffer_capacities[node.index()]
    }

    /// Metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The accumulated invariant-audit report, `None` unless
    /// [`SimConfig::audit`] was set.
    pub fn audit_report(&self) -> Option<&AuditReport> {
        self.shared.audit.as_deref().map(|a| &a.report)
    }

    /// Snapshot of the hierarchical phase profile, `None` unless
    /// [`SimConfig::profile`] was set.
    pub fn profile_report(&self) -> Option<ProfileReport> {
        self.shared.profiler.as_deref().map(Profiler::report)
    }

    #[inline]
    fn prof_enter(&mut self, phase: Phase) {
        if let Some(p) = &mut self.shared.profiler {
            p.enter(phase);
        }
    }

    #[inline]
    fn prof_exit(&mut self) {
        if let Some(p) = &mut self.shared.profiler {
            p.exit();
        }
    }

    /// Counts one dispatched contact toward the heartbeat and, when
    /// due, writes a progress line to stderr (keeping stdout free for
    /// JSONL): simulation progress, contact throughput since the last
    /// beat, peak RSS, and an ETA extrapolated from overall progress.
    fn heartbeat_tick(&mut self) {
        let known_end = self.source.known_end();
        let Some(hb) = &mut self.heartbeat else {
            return;
        };
        let now_wall = std::time::Instant::now();
        if hb.started_wall.is_none() {
            hb.started_wall = Some(now_wall);
            hb.started_sim = self.shared.now;
            hb.last_wall = now_wall;
        }
        let started = hb.started_wall.expect("initialised just above");
        hb.contacts += 1;
        if hb.contacts % hb.every != 0 {
            return;
        }
        let sim_now = self.shared.now.0;
        let rate = {
            let secs = now_wall.duration_since(hb.last_wall).as_secs_f64();
            let delta = hb.contacts - hb.last_contacts;
            if secs > 0.0 {
                delta as f64 / secs
            } else {
                0.0
            }
        };
        let wall = now_wall.duration_since(started).as_secs_f64();
        let eta = heartbeat_eta(wall, hb.started_sim.0, sim_now, known_end);
        let progress = heartbeat_progress(sim_now, known_end);
        eprintln!(
            "[heartbeat] {progress} contacts={} ({rate:.0}/s) rss={:.1}MB eta={eta}",
            hb.contacts,
            dtn_core::sys::peak_rss_bytes() as f64 / (1024.0 * 1024.0),
        );
        hb.last_wall = now_wall;
        hb.last_contacts = hb.contacts;
    }

    /// Installs a probe; every layer's [`ProbeEvent`]s flow into it
    /// from now on. Replaces any previously installed probe.
    pub fn set_probe(&mut self, probe: Box<dyn Probe>) {
        self.shared.probe = ProbeSink::Enabled(probe);
    }

    /// Removes and returns the installed probe (engine reverts to the
    /// zero-cost noop sink). `None` if no probe was installed.
    pub fn take_probe(&mut self) -> Option<Box<dyn Probe>> {
        match std::mem::take(&mut self.shared.probe) {
            ProbeSink::Enabled(p) => Some(p),
            ProbeSink::Noop => None,
        }
    }

    /// Appends workload events. Events must not be in the past; they are
    /// sorted internally.
    ///
    /// # Panics
    ///
    /// Panics if any event is earlier than the current time.
    pub fn add_workload(&mut self, mut events: Vec<WorkloadEvent>) {
        for e in &events {
            assert!(
                e.at() >= self.shared.now,
                "workload event at {:?} is in the past (now {:?})",
                e.at(),
                self.shared.now
            );
        }
        if events.is_empty() {
            return;
        }
        // Stable sort: equal-time new events keep their submission order.
        events.sort_by_key(WorkloadEvent::at);
        let tail_start = self.next_workload;
        if self.workload.len() == tail_start {
            self.workload.append(&mut events);
            return;
        }
        // The unprocessed tail is already sorted (invariant of this
        // method), so merge instead of re-sorting the whole tail. Tail
        // events win ties, matching what a stable sort of
        // `tail ++ events` would produce.
        let mut merged = Vec::with_capacity(self.workload.len() - tail_start + events.len());
        {
            let tail = &self.workload[tail_start..];
            let (mut i, mut j) = (0, 0);
            while i < tail.len() && j < events.len() {
                if tail[i].at() <= events[j].at() {
                    merged.push(tail[i]);
                    i += 1;
                } else {
                    merged.push(events[j]);
                    j += 1;
                }
            }
            merged.extend_from_slice(&tail[i..]);
            merged.extend_from_slice(&events[j..]);
        }
        self.workload.truncate(tail_start);
        self.workload.append(&mut merged);
    }

    /// Processes every event strictly before `until`, then advances the
    /// clock to `until`.
    ///
    /// With [`SimConfig::threads`] `> 1` this runs the windowed parallel
    /// executor (see [`Scheme::plan_contacts`]); results are bit-identical
    /// to the serial loop by construction.
    pub fn run_until(&mut self, until: Time) {
        if self.threads > 1 {
            self.run_until_windowed(until);
            return;
        }
        loop {
            let next_c = self.source.peek();
            let next_w = self.workload.get(self.next_workload).copied();
            // Workload events win ties so data generated at time t can be
            // pushed during a contact starting at the same instant.
            let (event_time, is_workload) = match (next_c.map(|c| c.start), next_w.map(|e| e.at()))
            {
                (None, None) => break,
                (Some(c), None) => (c, false),
                (None, Some(w)) => (w, true),
                (Some(c), Some(w)) => {
                    if w <= c {
                        (w, true)
                    } else {
                        (c, false)
                    }
                }
            };
            if event_time >= until {
                break;
            }
            self.shared.now = event_time;
            self.sample_if_due();
            self.fire_epoch_if_due();
            if is_workload {
                self.next_workload += 1;
                self.prof_enter(Phase::Workload);
                self.dispatch_workload(next_w.expect("is_workload implies a workload event"));
                self.prof_exit();
            } else {
                self.source.advance();
                self.prof_enter(Phase::ContactCommit);
                self.dispatch_contact(next_c.expect("!is_workload implies a contact"));
                self.prof_exit();
            }
        }
        self.shared.now = self.shared.now.max(until);
        self.sample_if_due();
        self.fire_epoch_if_due();
    }

    /// Processes every remaining event and returns the final metrics.
    pub fn run_to_end(&mut self) -> &Metrics {
        let end = Time(self.source.end_time().0 + 1);
        self.run_until(end);
        &self.shared.metrics
    }

    /// The windowed parallel executor. The protocol per iteration:
    ///
    /// 1. **Gather** — pull consecutive contacts into a window while no
    ///    other event source can fire first: every gathered contact
    ///    starts strictly before the next workload event (workload wins
    ///    ties, as in the serial loop), the next due sample, the next
    ///    due epoch, and `until`; the window is capped at [`MAX_WINDOW`].
    ///    Within a window, contacts are therefore the only events, and
    ///    the per-event `sample_if_due`/`fire_epoch_if_due` calls are
    ///    provably no-ops.
    /// 2. **Batch** — greedy first-fit interval coloring over node ids:
    ///    each contact joins the earliest batch containing neither of
    ///    its endpoints. Within a batch every endpoint appears exactly
    ///    once, so per-endpoint precomputation is conflict-free.
    /// 3. **Plan** — for each batch in order, hand the scheme a
    ///    read-only [`PlanCtx`] to precompute pure per-endpoint work in
    ///    parallel ([`Scheme::plan_contacts`]).
    /// 4. **Commit** — dispatch the window's contacts in original trace
    ///    order through the identical serial code path: RNG draws, rate
    ///    updates, transmissions, probes and audits all happen here, in
    ///    the exact serial sequence.
    ///
    /// Workload events and contacts that coincide with a sample/epoch
    /// boundary fall through to the serial per-event path unchanged.
    fn run_until_windowed(&mut self, until: Time) {
        let mut window: Vec<Contact> = Vec::with_capacity(MAX_WINDOW);
        let mut batch_of: Vec<u32> = Vec::with_capacity(MAX_WINDOW);
        loop {
            let next_c = self.source.peek();
            let next_w = self.workload.get(self.next_workload).copied();
            let (event_time, is_workload) = match (next_c.map(|c| c.start), next_w.map(|e| e.at()))
            {
                (None, None) => break,
                (Some(c), None) => (c, false),
                (None, Some(w)) => (w, true),
                (Some(c), Some(w)) => {
                    if w <= c {
                        (w, true)
                    } else {
                        (c, false)
                    }
                }
            };
            if event_time >= until {
                break;
            }
            if is_workload {
                self.shared.now = event_time;
                self.sample_if_due();
                self.fire_epoch_if_due();
                self.next_workload += 1;
                self.prof_enter(Phase::Workload);
                self.dispatch_workload(next_w.expect("is_workload implies a workload event"));
                self.prof_exit();
                continue;
            }
            // Gather the window: consecutive contacts none of which any
            // other event source can preempt.
            self.prof_enter(Phase::ContactGather);
            window.clear();
            let workload_bound = next_w.map(|e| e.at());
            while window.len() < MAX_WINDOW {
                let Some(c) = self.source.peek() else { break };
                let preempted = c.start >= until
                    || workload_bound.is_some_and(|w| w <= c.start)
                    || c.start >= self.next_sample
                    || (self.epoch_interval.is_some() && c.start >= self.next_epoch);
                if preempted {
                    break;
                }
                window.push(c);
                self.source.advance();
            }
            self.prof_exit();
            if window.is_empty() {
                // The very next contact coincides with a sample or epoch
                // boundary: fire those and dispatch it serially.
                self.shared.now = event_time;
                self.sample_if_due();
                self.fire_epoch_if_due();
                self.source.advance();
                self.prof_enter(Phase::ContactCommit);
                self.dispatch_contact(next_c.expect("!is_workload implies a contact"));
                self.prof_exit();
                continue;
            }
            self.run_window(&window, &mut batch_of);
        }
        self.shared.now = self.shared.now.max(until);
        self.sample_if_due();
        self.fire_epoch_if_due();
    }

    /// Batches, plans and commits one gathered window (stages 2–4 of
    /// [`Self::run_until_windowed`]). `batch_of` is caller-owned scratch.
    fn run_window(&mut self, window: &[Contact], batch_of: &mut Vec<u32>) {
        // Greedy first-fit endpoint-disjoint batching in trace order: a
        // contact conflicts exactly with contacts sharing an endpoint,
        // so it joins the earliest batch whose endpoint set misses both
        // of its nodes. The fixed scan order is the deterministic
        // tie-break — the same trace always yields the same batches.
        batch_of.clear();
        batch_of.resize(window.len(), 0);
        let mut batch_nodes: Vec<Vec<NodeId>> = Vec::new();
        let mut widest = 0u64;
        let mut batch_sizes: Vec<u64> = Vec::new();
        for (i, c) in window.iter().enumerate() {
            let slot = batch_nodes
                .iter()
                .position(|nodes| !nodes.contains(&c.a) && !nodes.contains(&c.b))
                .unwrap_or(batch_nodes.len());
            if slot == batch_nodes.len() {
                batch_nodes.push(Vec::new());
                batch_sizes.push(0);
            }
            batch_nodes[slot].push(c.a);
            batch_nodes[slot].push(c.b);
            batch_sizes[slot] += 1;
            widest = widest.max(batch_sizes[slot]);
            batch_of[i] = slot as u32;
        }
        let batches = batch_nodes.len() as u64;
        let conflicts = window.len() as u64 - batch_sizes[0];
        let at = window[0].start;
        let (contacts, widest_stat) = (window.len() as u64, widest);
        self.shared.probe.emit(|| ProbeEvent::ParallelWindow {
            at,
            contacts,
            batches,
            widest: widest_stat,
            conflicts,
        });

        // Plan phase: per batch, let the scheme warm its per-endpoint
        // caches in parallel. Read-only by construction; the scheme and
        // the shared engine state are disjoint borrows.
        self.prof_enter(Phase::ContactPlan);
        let mut batch: Vec<Contact> = Vec::with_capacity(widest as usize);
        for b in 0..batch_nodes.len() as u32 {
            batch.clear();
            batch.extend(
                window
                    .iter()
                    .zip(batch_of.iter())
                    .filter(|&(_, &slot)| slot == b)
                    .map(|(c, _)| *c),
            );
            let plan = PlanCtx {
                rates: &self.shared.rate_table,
                now: at,
                threads: self.threads,
            };
            self.scheme.plan_contacts(&plan, &batch);
        }
        self.prof_exit();

        // Commit phase: original trace order through the serial path.
        // The sample/epoch calls are provably no-ops (the gather bound
        // excluded due boundaries) but run for exact structural parity.
        for &contact in window {
            self.shared.now = contact.start;
            self.sample_if_due();
            self.fire_epoch_if_due();
            self.prof_enter(Phase::ContactCommit);
            self.dispatch_contact(contact);
            self.prof_exit();
        }
    }

    fn dispatch_workload(&mut self, event: WorkloadEvent) {
        match event {
            WorkloadEvent::GenerateData { item } => {
                self.shared.metrics.data_generated += 1;
                self.shared.probe.emit(|| ProbeEvent::DataInjected {
                    at: item.created_at,
                    data: item.id,
                    source: item.source,
                    size: item.size,
                });
                let mut ctx = SimCtx {
                    shared: &mut self.shared,
                };
                self.scheme.on_data_generated(&mut ctx, item);
            }
            WorkloadEvent::IssueQuery {
                at,
                requester,
                data,
                constraint,
            } => {
                let id = QueryId(self.shared.queries.len() as u64);
                self.shared.queries.push(QueryRecord {
                    issued_at: at,
                    expires_at: at + constraint,
                    satisfied_at: None,
                });
                self.shared.metrics.queries_issued += 1;
                self.shared.probe.emit(|| ProbeEvent::QueryInjected {
                    at,
                    query: id,
                    requester,
                    data,
                    expires_at: at + constraint,
                });
                let query = Query::new(id, requester, data, at, constraint);
                let mut ctx = SimCtx {
                    shared: &mut self.shared,
                };
                self.scheme.on_query_issued(&mut ctx, query);
            }
        }
    }

    fn dispatch_contact(&mut self, contact: Contact) {
        if self.heartbeat.is_some() {
            self.heartbeat_tick();
        }
        if let Some(audit) = &mut self.shared.audit {
            // Trace-monotonicity law: a malformed contact is reported
            // and quarantined before it can touch the RNG, the rate
            // table, or the scheme — one structured violation instead
            // of a cascade of secondary ones (or a panic downstream).
            let nodes = self.shared.buffer_capacities.len();
            if !crate::audit::check_contact_well_formed(&contact, nodes, audit) {
                return;
            }
        }
        if self.contact_loss > 0.0 && self.shared.rng.gen_bool(self.contact_loss) {
            // Fault injection: the radios never connected.
            self.shared.metrics.contacts_lost += 1;
            self.shared.probe.emit(|| ProbeEvent::ContactLost {
                at: contact.start,
                a: contact.a,
                b: contact.b,
            });
            return;
        }
        self.shared
            .rate_table
            .record(contact.a, contact.b, contact.start);
        // f64 keeps fractional seconds of the budget; whole-second
        // trace contacts get bit-identical budgets to the old integer
        // product (products here are far below 2^53).
        let budget =
            dtn_core::time::link_budget_bytes(contact.duration().as_secs_f64(), self.bandwidth);
        self.shared.link_budget = Some(budget);
        self.shared.probe.emit(|| ProbeEvent::ContactBegin {
            at: contact.start,
            a: contact.a,
            b: contact.b,
            budget,
        });
        let mut ctx = SimCtx {
            shared: &mut self.shared,
        };
        self.scheme.on_contact(&mut ctx, contact);
        let remaining = self.shared.link_budget.take().unwrap_or(0);
        if let Some(audit) = &mut self.shared.audit {
            if remaining > budget {
                audit.report.violate(AuditViolation {
                    law: AuditLaw::LinkBudget,
                    at: self.shared.now,
                    node: Some(contact.a),
                    item: None,
                    detail: format!(
                        "contact ({}, {}) ended with {remaining} budget bytes \
                         remaining of {budget}",
                        contact.a, contact.b
                    ),
                });
            }
        }
        self.shared.probe.emit(|| ProbeEvent::ContactEnd {
            at: contact.start,
            a: contact.a,
            b: contact.b,
            bytes_used: budget.saturating_sub(remaining),
        });
        if self.shared.audit.is_some() {
            self.run_audit();
        }
    }

    /// Takes one cache-occupancy sample if the sampling interval has
    /// elapsed. Samples are stamped with the *actual* measurement time
    /// (the clock only advances at events, so a due sample is taken at
    /// the next event rather than back-dated).
    fn sample_if_due(&mut self) {
        if self.shared.now < self.next_sample {
            return;
        }
        self.prof_enter(Phase::Sample);
        let stats = self.scheme.cache_stats(self.shared.now);
        self.shared.metrics.samples.push(CacheSample {
            at: self.shared.now,
            copies: stats.copies,
            distinct: stats.distinct,
            bytes: stats.bytes,
        });
        let at = self.shared.now;
        self.shared.probe.emit(|| ProbeEvent::CacheSampled {
            at,
            copies: stats.copies,
            bytes: stats.bytes,
        });
        while self.next_sample <= self.shared.now {
            self.next_sample += self.sample_interval;
        }
        self.prof_exit();
    }

    /// Fires the [`Scheme::on_epoch`] maintenance hook if the epoch
    /// interval has elapsed. Like sampling, a due epoch fires at the
    /// next event with the actual clock time; several missed intervals
    /// collapse into a single firing. Epochs fire outside contacts, so
    /// `link_budget` is `None` and transmission is impossible.
    fn fire_epoch_if_due(&mut self) {
        let Some(interval) = self.epoch_interval else {
            return;
        };
        if self.shared.now < self.next_epoch {
            return;
        }
        self.prof_enter(Phase::EpochMaintenance);
        let epoch = Epoch {
            index: self.epoch_index,
            at: self.shared.now,
        };
        self.epoch_index += 1;
        self.shared.probe.emit(|| ProbeEvent::EpochFired {
            at: epoch.at,
            index: epoch.index,
        });
        let mut ctx = SimCtx {
            shared: &mut self.shared,
        };
        self.scheme.on_epoch(&mut ctx, epoch);
        while self.next_epoch <= self.shared.now {
            self.next_epoch += interval;
        }
        if self.shared.audit.is_some() {
            self.run_audit();
        }
        self.prof_exit();
    }

    /// One audit sweep: engine-side query/delivery conservation, then
    /// the scheme's own [`Scheme::audit`]. Only called with the audit
    /// state present.
    fn run_audit(&mut self) {
        let Some(mut audit) = self.shared.audit.take() else {
            return;
        };
        self.prof_enter(Phase::AuditSweep);
        audit.report.begin_sweep();
        self.check_query_conservation(&mut audit);
        self.scheme.audit(self.shared.now, &mut audit.report);
        self.shared.audit = Some(audit);
        self.prof_exit();
    }

    /// [`AuditLaw::QueryConservation`] and
    /// [`AuditLaw::DeliveryAccounting`]: recompute query outcomes from
    /// the records and compare against the metric counters.
    fn check_query_conservation(&self, audit: &mut AuditState) {
        let now = self.shared.now;
        let m = &self.shared.metrics;
        let report = &mut audit.report;
        if m.queries_issued != self.shared.queries.len() as u64 {
            report.violate(AuditViolation {
                law: AuditLaw::QueryConservation,
                at: now,
                node: None,
                item: None,
                detail: format!(
                    "queries_issued {} != {} query records",
                    m.queries_issued,
                    self.shared.queries.len()
                ),
            });
        }
        let (mut satisfied, mut expired, mut in_flight, mut delay) = (0u64, 0u64, 0u64, 0u64);
        for rec in &self.shared.queries {
            match rec.satisfied_at {
                Some(at) => {
                    satisfied += 1;
                    delay += at.saturating_since(rec.issued_at).as_secs();
                }
                None if now >= rec.expires_at => expired += 1,
                None => in_flight += 1,
            }
        }
        if m.queries_satisfied != satisfied || satisfied + expired + in_flight != m.queries_issued {
            report.violate(AuditViolation {
                law: AuditLaw::QueryConservation,
                at: now,
                node: None,
                item: None,
                detail: format!(
                    "issued {} != satisfied {satisfied} + expired {expired} \
                     + in-flight {in_flight} (metrics satisfied {})",
                    m.queries_issued, m.queries_satisfied
                ),
            });
        }
        if m.total_delay_secs != delay {
            report.violate(AuditViolation {
                law: AuditLaw::QueryConservation,
                at: now,
                node: None,
                item: None,
                detail: format!(
                    "total_delay_secs {} != recomputed delay sum {delay}",
                    m.total_delay_secs
                ),
            });
        }
        let classified = m.queries_satisfied
            + m.duplicate_deliveries
            + m.late_deliveries
            + audit.unknown_deliveries;
        if classified != audit.deliveries_reported {
            report.violate(AuditViolation {
                law: AuditLaw::DeliveryAccounting,
                at: now,
                node: None,
                item: None,
                detail: format!(
                    "{} deliveries reported but {classified} classified \
                     (satisfied {} + duplicate {} + late {} + unknown {})",
                    audit.deliveries_reported,
                    m.queries_satisfied,
                    m.duplicate_deliveries,
                    m.late_deliveries,
                    audit.unknown_deliveries
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::DataId;
    use dtn_trace::synthetic::SyntheticTraceBuilder;

    /// Test scheme: the data source keeps its item; on contact with the
    /// requester of an open query for an item it holds, it "delivers".
    #[derive(Default)]
    struct DirectDelivery {
        holdings: Vec<(NodeId, DataItem)>,
        open_queries: Vec<Query>,
        contacts_seen: u64,
        transmit_result: Vec<bool>,
    }

    impl Scheme for DirectDelivery {
        fn on_data_generated(&mut self, _ctx: &mut SimCtx<'_>, item: DataItem) {
            self.holdings.push((item.source, item));
        }
        fn on_query_issued(&mut self, _ctx: &mut SimCtx<'_>, query: Query) {
            self.open_queries.push(query);
        }
        fn on_contact(&mut self, ctx: &mut SimCtx<'_>, contact: Contact) {
            self.contacts_seen += 1;
            let mut delivered = Vec::new();
            for (i, q) in self.open_queries.iter().enumerate() {
                if !contact.involves(q.requester) {
                    continue;
                }
                let peer = contact.peer_of(q.requester);
                if let Some((_, item)) = self
                    .holdings
                    .iter()
                    .find(|(holder, item)| *holder == peer && item.id == q.data)
                {
                    let ok = ctx.try_transmit(item.size);
                    self.transmit_result.push(ok);
                    if ok {
                        ctx.mark_delivered(q.id);
                        delivered.push(i);
                    }
                }
            }
            for i in delivered.into_iter().rev() {
                self.open_queries.swap_remove(i);
            }
        }
        fn cache_stats(&self, _now: Time) -> CacheStats {
            CacheStats {
                copies: self.holdings.len() as u64,
                distinct: self.holdings.len() as u64,
                bytes: self.holdings.iter().map(|(_, d)| d.size).sum(),
            }
        }
    }

    fn two_node_trace() -> ContactTrace {
        ContactTrace::new(
            2,
            vec![
                Contact::new(NodeId(0), NodeId(1), Time(1000), Time(1100)),
                Contact::new(NodeId(0), NodeId(1), Time(5000), Time(5100)),
            ],
            Duration(10_000),
        )
    }

    fn gen_event(id: u64, source: u32, size: u64, at: u64, life: u64) -> WorkloadEvent {
        WorkloadEvent::GenerateData {
            item: DataItem::new(DataId(id), NodeId(source), size, Time(at), Duration(life)),
        }
    }

    fn query_event(at: u64, requester: u32, data: u64, constraint: u64) -> WorkloadEvent {
        WorkloadEvent::IssueQuery {
            at: Time(at),
            requester: NodeId(requester),
            data: DataId(data),
            constraint: Duration(constraint),
        }
    }

    #[test]
    fn query_satisfied_on_contact() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            gen_event(1, 0, 1000, 100, 9000),
            query_event(200, 1, 1, 5000),
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_issued, 1);
        assert_eq!(m.queries_satisfied, 1);
        // satisfied at the t=1000 contact, issued at 200 → delay 800
        assert_eq!(m.total_delay_secs, 800);
        assert_eq!(m.data_generated, 1);
        assert_eq!(m.bytes_transmitted, 1000);
    }

    #[test]
    fn expired_query_is_not_satisfied() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            gen_event(1, 0, 1000, 100, 9000),
            query_event(200, 1, 1, 300), // expires at 500, first contact at 1000
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_satisfied, 0);
        assert_eq!(m.late_deliveries, 1);
        assert!((m.success_ratio() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn transfer_fails_when_contact_too_short() {
        let trace = two_node_trace();
        // 100 s contact at default bandwidth carries 26.25 MB; ask for more.
        let huge = 100 * 262_500 + 1;
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            gen_event(1, 0, huge, 100, 9000),
            query_event(200, 1, 1, 8000),
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_satisfied, 0);
        assert_eq!(m.transfers_rejected, 2); // both contacts too short
        assert_eq!(m.bytes_transmitted, 0);
    }

    #[test]
    fn duplicate_delivery_counted_once() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            gen_event(1, 0, 10, 100, 9500),
            query_event(200, 1, 1, 9000),
            query_event(210, 1, 1, 9000),
        ]);
        sim.run_to_end();
        // Two distinct queries for the same data both get satisfied (they
        // are independent); satisfy count is 2, duplicates 0.
        assert_eq!(sim.metrics().queries_satisfied, 2);
        assert_eq!(sim.metrics().duplicate_deliveries, 0);
    }

    /// A scheme that never forgets: it re-delivers every known query on
    /// every contact, like a multi-copy response arriving over several
    /// paths.
    #[derive(Default)]
    struct RedundantDelivery {
        queries: Vec<QueryId>,
        outcomes: Vec<DeliveryOutcome>,
    }

    impl Scheme for RedundantDelivery {
        fn on_data_generated(&mut self, _ctx: &mut SimCtx<'_>, _item: DataItem) {}
        fn on_query_issued(&mut self, _ctx: &mut SimCtx<'_>, query: Query) {
            self.queries.push(query.id);
        }
        fn on_contact(&mut self, ctx: &mut SimCtx<'_>, _contact: Contact) {
            for &q in &self.queries {
                self.outcomes.push(ctx.mark_delivered(q));
            }
        }
        fn cache_stats(&self, _now: Time) -> CacheStats {
            CacheStats::default()
        }
    }

    #[test]
    fn redelivered_query_counts_as_duplicate() {
        // The same query delivered at both contacts: the t=1000 arrival
        // satisfies it, the t=5000 re-delivery is wasted bandwidth and
        // must land in `duplicate_deliveries`, not `queries_satisfied`.
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, RedundantDelivery::default(), SimConfig::default());
        sim.add_workload(vec![query_event(200, 1, 1, 9000)]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_satisfied, 1);
        assert_eq!(m.duplicate_deliveries, 1);
        assert_eq!(m.late_deliveries, 0);
        assert_eq!(m.total_delay_secs, 800); // satisfied at the first contact
        assert_eq!(
            sim.scheme().outcomes,
            vec![
                DeliveryOutcome::Accepted {
                    delay: Duration(800)
                },
                DeliveryOutcome::Duplicate,
            ]
        );
    }

    #[test]
    fn duplicate_late_and_rejected_metrics_disagree_never() {
        // One trace, three failure modes, each counted exactly once in
        // its own bucket: a satisfied query with one duplicate re-send, a
        // query that expires before its only delivery (late), and an
        // oversized transfer (rejected). None of them leak into
        // `queries_satisfied`.
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, RedundantDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            query_event(200, 1, 1, 9000), // satisfied at 1000, duplicate at 5000
            query_event(300, 0, 2, 400),  // expires at 700 < first contact
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_issued, 2);
        assert_eq!(m.queries_satisfied, 1);
        assert_eq!(m.duplicate_deliveries, 1);
        // The expired query is "delivered" at both contacts, both late.
        assert_eq!(m.late_deliveries, 2);
        assert!((m.success_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rate_table_updates_during_run() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.run_until(Time(2000));
        assert_eq!(sim.rate_table().contact_count(NodeId(0), NodeId(1)), 1);
        sim.run_to_end();
        assert_eq!(sim.rate_table().contact_count(NodeId(0), NodeId(1)), 2);
    }

    #[test]
    fn run_until_is_exclusive_and_advances_clock() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.run_until(Time(1000));
        assert_eq!(sim.scheme().contacts_seen, 0, "t=1000 contact excluded");
        assert_eq!(sim.now(), Time(1000));
        sim.run_until(Time(1001));
        assert_eq!(sim.scheme().contacts_seen, 1);
    }

    #[test]
    fn workload_added_midway_is_processed() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.run_until(Time(3000));
        sim.add_workload(vec![
            gen_event(1, 0, 10, 3100, 6000),
            query_event(3200, 1, 1, 6000),
        ]);
        sim.run_to_end();
        assert_eq!(sim.metrics().queries_satisfied, 1);
        // satisfied at t=5000 contact → delay 1800
        assert_eq!(sim.metrics().total_delay_secs, 1800);
    }

    #[test]
    fn interleaved_add_workload_preserves_tie_order() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![
            gen_event(1, 0, 10, 300, 9000),
            gen_event(2, 0, 10, 500, 9000),
        ]);
        // Consume the t=300 event so the merge runs against a tail with a
        // processed prefix in front of it.
        sim.run_until(Time(400));
        // New same-time events must land *after* the already-queued t=500
        // event (tail wins ties), while an earlier new event slots in
        // front; a third call's t=500 event goes after both.
        sim.add_workload(vec![
            gen_event(3, 0, 10, 500, 9000),
            gen_event(4, 0, 10, 450, 9000),
        ]);
        sim.add_workload(vec![gen_event(5, 0, 10, 500, 9000)]);
        let ids: Vec<u64> = sim.workload[sim.next_workload..]
            .iter()
            .map(|e| match e {
                WorkloadEvent::GenerateData { item } => item.id.0,
                _ => unreachable!("only data events queued"),
            })
            .collect();
        assert_eq!(ids, vec![4, 2, 3, 5]);
        sim.run_to_end();
        assert_eq!(sim.metrics().data_generated, 5);
    }

    #[test]
    fn merged_workload_still_wins_ties_against_contacts() {
        // Data generated and queried at exactly the first contact's start
        // time (t=1000) must be processed before that contact, so the
        // delivery happens during the same-instant contact with zero delay.
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.add_workload(vec![gen_event(1, 0, 10, 1000, 9000)]);
        sim.add_workload(vec![query_event(1000, 1, 1, 5000)]);
        sim.run_to_end();
        assert_eq!(sim.metrics().queries_satisfied, 1);
        assert_eq!(sim.metrics().total_delay_secs, 0);
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn past_workload_panics() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.run_until(Time(5000));
        sim.add_workload(vec![query_event(100, 0, 1, 50)]);
    }

    #[test]
    fn buffer_capacities_in_range_and_deterministic() {
        let trace = SyntheticTraceBuilder::new(20).seed(2).build();
        let cfg = SimConfig {
            buffer_range: (1000, 2000),
            seed: 9,
            ..SimConfig::default()
        };
        let sim1 = Simulator::new(&trace, DirectDelivery::default(), cfg.clone());
        let sim2 = Simulator::new(&trace, DirectDelivery::default(), cfg);
        for n in 0..20u32 {
            let c = sim1.buffer_capacity(NodeId(n));
            assert!((1000..=2000).contains(&c));
            assert_eq!(c, sim2.buffer_capacity(NodeId(n)));
        }
    }

    #[test]
    fn samples_taken_at_interval() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            sample_interval: Duration(1000),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        sim.add_workload(vec![gen_event(1, 0, 10, 100, 9000)]);
        sim.run_to_end();
        let samples = &sim.metrics().samples;
        // Samples land on events: the t=1000 contact, the t=5000 contact
        // and the end-of-trace boundary.
        assert!(samples.len() >= 3, "got {} samples", samples.len());
        assert_eq!(samples[0].at, Time(1000));
        assert_eq!(samples[0].copies, 1);
        for w in samples.windows(2) {
            assert!(w[1].at > w[0].at, "sample times must advance");
        }
    }

    #[test]
    fn full_contact_loss_silences_the_network() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            contact_loss_probability: 1.0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        sim.add_workload(vec![
            gen_event(1, 0, 10, 100, 9000),
            query_event(200, 1, 1, 9000),
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.contacts_lost, 2);
        assert_eq!(m.queries_satisfied, 0);
        assert_eq!(m.bytes_transmitted, 0);
        assert_eq!(
            sim.rate_table().total_contacts(),
            0,
            "lost contacts are invisible"
        );
        assert_eq!(sim.scheme().contacts_seen, 0);
    }

    #[test]
    fn partial_contact_loss_drops_roughly_that_fraction() {
        // A denser synthetic trace: about half the contacts must vanish.
        let trace = SyntheticTraceBuilder::new(10)
            .duration(dtn_core::time::Duration::days(1))
            .target_contacts(2_000)
            .seed(3)
            .build();
        let cfg = SimConfig {
            contact_loss_probability: 0.5,
            seed: 7,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        sim.run_to_end();
        let lost = sim.metrics().contacts_lost as f64;
        let total = trace.contact_count() as f64;
        assert!((lost / total - 0.5).abs() < 0.06, "lost {lost} of {total}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_loss_probability_panics() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            contact_loss_probability: 1.5,
            ..SimConfig::default()
        };
        let _ = Simulator::new(&trace, DirectDelivery::default(), cfg);
    }

    #[test]
    fn link_access_shares_budget_with_try_transmit() {
        struct Splitter;
        impl Scheme for Splitter {
            fn on_data_generated(&mut self, _: &mut SimCtx<'_>, _: DataItem) {}
            fn on_query_issued(&mut self, _: &mut SimCtx<'_>, _: Query) {}
            fn on_contact(&mut self, ctx: &mut SimCtx<'_>, _: Contact) {
                let start = ctx.remaining_link_capacity().expect("in contact");
                // Spend half through the split-borrow interface…
                {
                    let mut link = ctx.link_access();
                    assert!(link.try_transmit(start / 2));
                    // …and read rates through the same handle.
                    let _ = link.rate_table().node_count();
                }
                // …and the rest through the plain interface.
                assert_eq!(ctx.remaining_link_capacity(), Some(start - start / 2));
                assert!(ctx.try_transmit(start - start / 2));
                assert!(!ctx.try_transmit(1), "budget must be exhausted");
            }
            fn cache_stats(&self, _: Time) -> CacheStats {
                CacheStats::default()
            }
        }
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, Splitter, SimConfig::default());
        sim.run_to_end();
        assert!(sim.metrics().bytes_transmitted > 0);
        assert_eq!(sim.metrics().transfers_rejected, 2);
    }

    #[test]
    fn unknown_query_delivery_reports_unknown() {
        struct Bogus;
        impl Scheme for Bogus {
            fn on_data_generated(&mut self, _: &mut SimCtx<'_>, _: DataItem) {}
            fn on_query_issued(&mut self, _: &mut SimCtx<'_>, _: Query) {}
            fn on_contact(&mut self, ctx: &mut SimCtx<'_>, _: Contact) {
                assert_eq!(ctx.mark_delivered(QueryId(42)), DeliveryOutcome::Unknown);
            }
            fn cache_stats(&self, _: Time) -> CacheStats {
                CacheStats::default()
            }
        }
        let trace = two_node_trace();
        let cfg = SimConfig {
            audit: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, Bogus, cfg);
        sim.run_to_end();
        // Unknown deliveries are classified, so delivery accounting
        // still balances and the audit stays clean.
        let report = sim.audit_report().expect("audit enabled");
        assert!(report.is_clean(), "{}", report.summary());
        assert!(report.sweeps() >= 2, "one sweep per surviving contact");
    }

    #[test]
    fn stream_source_replays_identically_to_trace_source() {
        // The same synthetic population driven once from the
        // materialized trace and once from the streaming generator:
        // every metric must agree bit for bit, because the engine sees
        // the exact same contact sequence.
        let builder = SyntheticTraceBuilder::new(12)
            .duration(Duration::days(1))
            .target_contacts(800)
            .seed(6);
        let trace = builder.build();
        let cfg = SimConfig {
            seed: 4,
            ..SimConfig::default()
        };
        let workload = vec![
            gen_event(1, 0, 1000, 100, 80_000),
            query_event(200, 1, 1, 50_000),
            query_event(900, 5, 1, 50_000),
        ];
        let mut by_trace = Simulator::new(&trace, DirectDelivery::default(), cfg.clone());
        by_trace.add_workload(workload.clone());
        by_trace.run_to_end();
        let mut by_stream = Simulator::from_source(
            StreamSource::from_synthetic(builder.stream()),
            DirectDelivery::default(),
            cfg,
        );
        by_stream.add_workload(workload);
        by_stream.run_to_end();
        assert_eq!(by_trace.metrics(), by_stream.metrics());
        assert_eq!(
            by_trace.rate_table().total_contacts(),
            by_stream.rate_table().total_contacts()
        );
        assert_eq!(
            by_trace.scheme().contacts_seen,
            by_stream.scheme().contacts_seen
        );
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_stream_panics() {
        let contacts = vec![
            Contact::new(NodeId(0), NodeId(1), Time(5000), Time(5100)),
            Contact::new(NodeId(0), NodeId(1), Time(1000), Time(1100)),
        ];
        let source = StreamSource::new(contacts.into_iter(), 2, Duration(10_000));
        let mut sim =
            Simulator::from_source(source, DirectDelivery::default(), SimConfig::default());
        sim.run_to_end();
    }

    #[test]
    fn audit_off_reports_nothing() {
        let trace = two_node_trace();
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), SimConfig::default());
        sim.run_to_end();
        assert!(sim.audit_report().is_none());
    }

    #[test]
    fn audit_clean_on_mixed_outcomes() {
        // Satisfied + duplicate + late deliveries in one run: every
        // conservation law holds at each contact and epoch sweep.
        let trace = two_node_trace();
        let cfg = SimConfig {
            audit: true,
            epoch_interval: Some(Duration(2_000)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, RedundantDelivery::default(), cfg);
        sim.add_workload(vec![
            query_event(200, 1, 1, 9000), // satisfied at 1000, duplicate at 5000
            query_event(300, 0, 2, 400),  // expires at 700: late at both contacts
        ]);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_satisfied, 1);
        assert_eq!(m.duplicate_deliveries, 1);
        assert_eq!(m.late_deliveries, 2);
        let report = sim.audit_report().expect("audit enabled");
        assert!(report.is_clean(), "{}", report.summary());
        assert!(
            report.sweeps() > 2,
            "epochs must sweep too, got {}",
            report.sweeps()
        );
    }

    #[test]
    fn audit_catches_metric_drift() {
        // A scheme whose audit hook reports its own violation proves the
        // plumbing end to end: the report surfaces through the engine.
        struct SelfAccusing;
        impl Scheme for SelfAccusing {
            fn on_data_generated(&mut self, _: &mut SimCtx<'_>, _: DataItem) {}
            fn on_query_issued(&mut self, _: &mut SimCtx<'_>, _: Query) {}
            fn on_contact(&mut self, _: &mut SimCtx<'_>, _: Contact) {}
            fn cache_stats(&self, _: Time) -> CacheStats {
                CacheStats::default()
            }
            fn audit(&self, now: Time, report: &mut AuditReport) {
                report.violate(AuditViolation {
                    law: AuditLaw::CopyConservation,
                    at: now,
                    node: Some(NodeId(0)),
                    item: None,
                    detail: "seeded".into(),
                });
            }
        }
        let trace = two_node_trace();
        let cfg = SimConfig {
            audit: true,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, SelfAccusing, cfg);
        sim.run_to_end();
        let report = sim.audit_report().expect("audit enabled");
        assert!(!report.is_clean());
        assert_eq!(report.violations()[0].law, AuditLaw::CopyConservation);
    }

    use crate::probe::RecordingProbe;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Runs the full stress configuration (audits, epochs, sampling,
    /// contact loss) at the given thread count and returns everything
    /// observable: metrics, probe events, rate-table totals, scheme
    /// state.
    fn stressed_run(threads: usize) -> (Metrics, Vec<ProbeEvent>, u64, u64, usize) {
        let trace = SyntheticTraceBuilder::new(15)
            .duration(Duration::days(1))
            .target_contacts(1_500)
            .seed(11)
            .build();
        let total_contacts = trace.contact_count();
        let cfg = SimConfig {
            seed: 5,
            threads,
            audit: true,
            epoch_interval: Some(Duration(7_000)),
            sample_interval: Duration(11_000),
            contact_loss_probability: 0.1,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        let recorder = Rc::new(RefCell::new(RecordingProbe::new()));
        sim.set_probe(Box::new(Rc::clone(&recorder)));
        sim.add_workload(vec![
            gen_event(1, 0, 1000, 100, 80_000),
            gen_event(2, 3, 500, 150, 80_000),
            query_event(200, 1, 1, 50_000),
            query_event(900, 5, 1, 50_000),
            query_event(1_000, 7, 2, 50_000),
        ]);
        sim.run_to_end();
        assert!(
            sim.audit_report().expect("audit enabled").is_clean(),
            "threads={threads} audit dirty"
        );
        drop(sim.take_probe());
        let probe = Rc::try_unwrap(recorder)
            .unwrap_or_else(|_| panic!("probe back"))
            .into_inner();
        (
            sim.metrics().clone(),
            probe.events().to_vec(),
            sim.rate_table().total_contacts(),
            sim.scheme().contacts_seen,
            total_contacts,
        )
    }

    #[test]
    fn windowed_executor_matches_serial_bit_for_bit() {
        // The central tentpole claim: for any thread count, metrics,
        // rate tables, scheme state and the probe stream (modulo the
        // extra `parallel_window` planning events) are identical to the
        // serial engine — same RNG draws, same order, same everything.
        let (serial_m, serial_events, serial_rates, serial_seen, _) = stressed_run(1);
        assert!(
            !serial_events
                .iter()
                .any(|e| matches!(e, ProbeEvent::ParallelWindow { .. })),
            "serial runs must not emit planning events"
        );
        for threads in [2usize, 4] {
            let (m, events, rates, seen, _) = stressed_run(threads);
            let filtered: Vec<ProbeEvent> = events
                .into_iter()
                .filter(|e| !matches!(e, ProbeEvent::ParallelWindow { .. }))
                .collect();
            assert_eq!(serial_m, m, "metrics diverged at threads={threads}");
            assert_eq!(
                serial_events, filtered,
                "probe stream diverged at threads={threads}"
            );
            assert_eq!(serial_rates, rates);
            assert_eq!(serial_seen, seen);
        }
    }

    #[test]
    fn windowed_executor_reports_batch_statistics() {
        let (_, events, _, _, total) = stressed_run(2);
        let mut windows = 0u64;
        let mut contacts = 0u64;
        for e in &events {
            if let ProbeEvent::ParallelWindow {
                contacts: c,
                batches,
                widest,
                conflicts,
                ..
            } = e
            {
                windows += 1;
                contacts += c;
                assert!(*batches >= 1 && *batches <= *c);
                assert!(*widest >= 1 && *widest <= *c);
                assert!(*conflicts < *c, "batch 0 always holds one contact");
            }
        }
        assert!(windows > 0, "a dense trace must form windows");
        // Every windowed contact is also dispatched; the few contacts
        // that coincide with a sample/epoch boundary bypass windowing
        // through the serial fallback, so the tally can only undershoot.
        assert!(contacts <= total as u64, "window tally overshot the trace");
        assert!(
            contacts > total as u64 / 2,
            "most contacts should go through windows ({contacts} of {total})"
        );
    }

    /// A scheme that records what the planning phase shows it, to pin
    /// the batching contract: endpoint-disjoint batches, trace-order
    /// coverage of every windowed contact.
    #[derive(Default)]
    struct PlanRecorder {
        batches: Vec<Vec<Contact>>,
        planned_now: Vec<Time>,
        dispatched: Vec<Contact>,
    }

    impl Scheme for PlanRecorder {
        fn on_data_generated(&mut self, _: &mut SimCtx<'_>, _: DataItem) {}
        fn on_query_issued(&mut self, _: &mut SimCtx<'_>, _: Query) {}
        fn on_contact(&mut self, _: &mut SimCtx<'_>, contact: Contact) {
            self.dispatched.push(contact);
        }
        fn plan_contacts(&mut self, plan: &PlanCtx<'_>, batch: &[Contact]) {
            self.batches.push(batch.to_vec());
            self.planned_now.push(plan.now());
            assert!(plan.threads() > 1, "planning only runs in parallel mode");
        }
        fn cache_stats(&self, _: Time) -> CacheStats {
            CacheStats::default()
        }
    }

    #[test]
    fn plan_batches_are_endpoint_disjoint_and_cover_the_window() {
        let trace = SyntheticTraceBuilder::new(10)
            .duration(Duration::days(1))
            .target_contacts(600)
            .seed(4)
            .build();
        let cfg = SimConfig {
            threads: 2,
            // Push sampling past the trace end so no contact coincides
            // with a sample boundary and bypasses the planning phase.
            sample_interval: Duration::days(30),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, PlanRecorder::default(), cfg);
        sim.run_to_end();
        let scheme = sim.scheme();
        assert!(!scheme.batches.is_empty());
        let mut planned = 0usize;
        for batch in &scheme.batches {
            let mut nodes = Vec::new();
            for c in batch {
                assert!(
                    !nodes.contains(&c.a) && !nodes.contains(&c.b),
                    "endpoint repeated within a batch"
                );
                nodes.push(c.a);
                nodes.push(c.b);
            }
            planned += batch.len();
        }
        // No loss, no samples, no epochs: every contact goes through
        // exactly one planning batch, then gets dispatched.
        assert_eq!(planned, trace.contact_count());
        assert_eq!(scheme.dispatched.len(), trace.contact_count());
        for w in scheme.dispatched.windows(2) {
            assert!(w[0].start <= w[1].start, "commit must keep trace order");
        }
    }

    #[test]
    fn windowed_executor_respects_run_until_boundary() {
        let trace = two_node_trace();
        let cfg = SimConfig {
            threads: 4,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        sim.run_until(Time(1000));
        assert_eq!(sim.scheme().contacts_seen, 0, "t=1000 contact excluded");
        assert_eq!(sim.now(), Time(1000));
        sim.run_until(Time(1001));
        assert_eq!(sim.scheme().contacts_seen, 1);
        sim.run_to_end();
        assert_eq!(sim.scheme().contacts_seen, 2);
    }

    #[test]
    fn capped_delay_samples_keep_quantiles_exact_via_histogram() {
        // 12 satisfied queries under max_delay_samples=8: the raw
        // vector keeps only the first 8 (earliest-issued → largest
        // delays here), but the histogram sees all 12, so quantiles
        // stay population-exact at bucket resolution.
        let trace = two_node_trace();
        let cfg = SimConfig {
            max_delay_samples: Some(8),
            delay_histogram: Some((60, 32)),
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(&trace, DirectDelivery::default(), cfg);
        let mut events = vec![gen_event(1, 0, 1000, 50, 9000)];
        for i in 0..12u64 {
            events.push(query_event(100 + i * 50, 1, 1, 5000));
        }
        sim.add_workload(events);
        sim.run_to_end();
        let m = sim.metrics();
        assert_eq!(m.queries_satisfied, 12);
        assert_eq!(m.delays_secs.len(), 8, "cap honoured");
        assert!(m.delay_samples_capped());
        let hist = m.delay_hist.as_ref().expect("histogram enabled");
        assert_eq!(hist.count(), 12, "histogram sees every delivery");
        assert_eq!(
            m.delay_quantile(0.5).map(|d| d.0),
            hist.quantile_bucket(0.5),
            "capped quantile routes through the histogram"
        );
        // The capped prefix holds the *largest* delays (earliest
        // queries wait longest), so the raw-vector median would be
        // biased upward; the histogram answer must sit below it.
        let mut prefix = m.delays_secs.clone();
        prefix.sort_unstable();
        assert!(
            m.delay_quantile(0.5).unwrap().0 < prefix[prefix.len() / 2],
            "histogram median {:?} not below biased prefix median {}",
            m.delay_quantile(0.5),
            prefix[prefix.len() / 2]
        );
    }

    #[test]
    fn heartbeat_eta_is_dash_before_any_progress() {
        // progressed == 0: nothing to extrapolate from, with or
        // without a known horizon — never a division by zero.
        assert_eq!(heartbeat_eta(12.0, 500, 500, Some(Time(10_000))), "-");
        assert_eq!(heartbeat_eta(12.0, 500, 500, None), "-");
        // started_sim ahead of sim_now (clock skew) saturates to zero.
        assert_eq!(heartbeat_eta(12.0, 800, 500, Some(Time(10_000))), "-");
    }

    #[test]
    fn heartbeat_eta_is_question_mark_for_unknown_horizon() {
        assert_eq!(heartbeat_eta(30.0, 0, 5_000, None), "?");
        assert_eq!(heartbeat_progress(5_000, None), "t=5000s/?");
    }

    #[test]
    fn heartbeat_eta_extrapolates_with_a_known_horizon() {
        // 10 wall seconds covered 2000 of 10000 sim seconds → 8000
        // remain → 40s of wall clock left.
        assert_eq!(heartbeat_eta(10.0, 0, 2_000, Some(Time(10_000))), "40s");
        assert_eq!(
            heartbeat_progress(2_000, Some(Time(10_000))),
            "t=2000s/10000s (20.0%)"
        );
        // Past the horizon: remaining saturates, ETA collapses to 0.
        assert_eq!(heartbeat_eta(10.0, 0, 12_000, Some(Time(10_000))), "0s");
        // Degenerate zero-length horizon reads as complete.
        assert_eq!(heartbeat_progress(0, Some(Time(0))), "t=0s/0s (100.0%)");
    }

    #[test]
    fn stream_source_open_ended_hides_the_horizon() {
        let contacts = vec![Contact::new(NodeId(0), NodeId(1), Time(10), Time(20))];
        let src = StreamSource::new(contacts.clone().into_iter(), 2, Duration(1_000));
        assert_eq!(src.known_end(), Some(Time(1_000)), "default: horizon known");
        let open = StreamSource::new(contacts.into_iter(), 2, Duration(1_000)).open_ended();
        assert_eq!(open.known_end(), None);
        assert_eq!(open.end_time(), Time(1_000), "run bound is unchanged");
        let trace = two_node_trace();
        let trace_src = TraceSource::new(&trace);
        assert_eq!(trace_src.known_end(), Some(trace_src.end_time()));
    }
}
