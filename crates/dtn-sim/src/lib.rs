//! Discrete-event simulator for Disruption Tolerant Networks.
//!
//! This crate provides the evaluation substrate of the paper (§VI-A): a
//! contact-trace-driven engine with bandwidth-limited transmission
//! (2.1 Mb/s Bluetooth EDR by default), finite per-node buffers, online
//! contact-rate estimation and query bookkeeping. Data-access protocols
//! plug in through the [`engine::Scheme`] trait; the paper's intentional
//! NCL caching scheme and its baselines live in the `dtn-cache` crate.
//!
//! # Example
//!
//! See [`engine::Simulator`] for a runnable end-to-end example.

pub mod audit;
pub mod buffer;
pub mod decision;
pub mod engine;
pub mod message;
pub mod metrics;
pub mod oracle;
pub mod overlay;
pub mod probe;
pub mod profiler;
pub mod telemetry;

pub use audit::{AuditLaw, AuditReport, AuditState, AuditViolation};
pub use buffer::Buffer;
pub use decision::{DecisionPoint, PlacementDecision, RelayPlan, RouteDecision};
pub use engine::{
    megabits, CacheStats, DeliveryOutcome, Scheme, SimConfig, SimCtx, Simulator, WorkloadEvent,
};
pub use message::{DataItem, Query};
pub use metrics::Metrics;
pub use oracle::{OracleStats, PathOracle};
pub use overlay::{OverlayKind, OverlaySource, RegimeOverlay};
pub use probe::{
    DelayDecomposition, HopPhase, HopRecord, NoopProbe, Probe, ProbeEvent, ProbeSink, QueryTrace,
    RecordingProbe, TeeProbe,
};
pub use profiler::{Phase, ProfileEntry, ProfileReport, Profiler};
pub use telemetry::{Telemetry, TelemetryConfig, TelemetryTotals, WindowStats};
