//! Finite per-node caching buffers.
//!
//! "The basic prerequisite is that each node has only limited buffer for
//! caching" (§III-A). A [`Buffer`] tracks which [`DataItem`]s a node
//! holds and enforces the byte capacity; *what* to evict is the caching
//! scheme's decision (see the `dtn-cache` crate), so the buffer only
//! offers mechanical insert/remove plus expiry cleanup.
//!
//! Items live in a dense `Vec` of slots with a `DataId → slot` index on
//! the side: `contains`/`get` are a single hash lookup, iteration is a
//! cache-friendly slice walk in a deterministic order, and removal is a
//! `swap_remove` plus one index fix-up. A monotone [`generation`]
//! counter increments on every successful insert or remove so callers
//! (e.g. the cache-exchange skip in `dtn-cache`) can cheaply detect
//! "content unchanged since I last looked".
//!
//! [`generation`]: Buffer::generation

use std::collections::HashMap;

use dtn_core::ids::DataId;
use dtn_core::time::Time;

use crate::message::DataItem;

/// A byte-capacity-limited store of data items.
///
/// # Example
///
/// ```
/// use dtn_core::ids::{DataId, NodeId};
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::buffer::Buffer;
/// use dtn_sim::message::DataItem;
///
/// let mut buf = Buffer::new(100);
/// let item = DataItem::new(DataId(1), NodeId(0), 60, Time(0), Duration(100));
/// assert!(buf.insert(item).is_ok());
/// // A second 60-byte item does not fit.
/// let item2 = DataItem::new(DataId(2), NodeId(0), 60, Time(0), Duration(100));
/// assert!(buf.insert(item2).is_err());
/// assert_eq!(buf.free(), 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    /// Dense item storage; order is insertion order permuted by
    /// `swap_remove`s — deterministic for a deterministic op sequence.
    slots: Vec<DataItem>,
    /// `DataId → position in slots`.
    index: HashMap<DataId, usize>,
    /// Bumped on every successful insert and remove (not on duplicate
    /// inserts or missing removes).
    generation: u64,
}

/// Error returned when an item does not fit into a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientSpace {
    /// Bytes the item needs.
    pub needed: u64,
    /// Bytes currently free.
    pub free: u64,
}

impl std::fmt::Display for InsufficientSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient buffer space: need {} bytes, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for InsufficientSpace {}

impl Buffer {
    /// Creates an empty buffer of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            used: 0,
            slots: Vec::new(),
            index: HashMap::new(),
            generation: 0,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Monotone counter of content changes: bumped by every successful
    /// [`insert`](Self::insert) and [`remove`](Self::remove) (duplicate
    /// inserts and removes of absent ids do not count). Two reads
    /// returning the same value guarantee the stored item set is
    /// unchanged in between.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Whether the item would fit right now.
    pub fn fits(&self, size: u64) -> bool {
        size <= self.free()
    }

    /// Inserts an item.
    ///
    /// Re-inserting an id the buffer already holds is a no-op success
    /// (the node already has the copy).
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientSpace`] if the item does not fit.
    pub fn insert(&mut self, item: DataItem) -> Result<(), InsufficientSpace> {
        if self.index.contains_key(&item.id) {
            return Ok(());
        }
        if !self.fits(item.size) {
            return Err(InsufficientSpace {
                needed: item.size,
                free: self.free(),
            });
        }
        self.used += item.size;
        self.index.insert(item.id, self.slots.len());
        self.slots.push(item);
        self.generation += 1;
        Ok(())
    }

    /// Removes and returns an item.
    pub fn remove(&mut self, id: DataId) -> Option<DataItem> {
        let pos = self.index.remove(&id)?;
        let item = self.slots.swap_remove(pos);
        if let Some(moved) = self.slots.get(pos) {
            self.index.insert(moved.id, pos);
        }
        self.used -= item.size;
        self.generation += 1;
        Some(item)
    }

    /// Whether the buffer holds `id`.
    pub fn contains(&self, id: DataId) -> bool {
        self.index.contains_key(&id)
    }

    /// The stored item with this id, if any.
    pub fn get(&self, id: DataId) -> Option<&DataItem> {
        self.index.get(&id).map(|&pos| &self.slots[pos])
    }

    /// Iterates over the stored items in slot order (deterministic for a
    /// deterministic operation sequence, unlike a hash map's).
    pub fn iter(&self) -> impl Iterator<Item = &DataItem> {
        self.slots.iter()
    }

    /// Drops every item that has expired by `now`; returns how many were
    /// dropped. In-place — no temporary allocation.
    pub fn drop_expired(&mut self, now: Time) -> usize {
        let mut dropped = 0;
        let mut pos = 0;
        while pos < self.slots.len() {
            if self.slots[pos].is_alive(now) {
                pos += 1;
                continue;
            }
            let item = self.slots.swap_remove(pos);
            self.index.remove(&item.id);
            if let Some(moved) = self.slots.get(pos) {
                self.index.insert(moved.id, pos);
            }
            self.used -= item.size;
            self.generation += 1;
            dropped += 1;
            // Re-examine `pos`: the swapped-in tail item is unchecked.
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::NodeId;
    use dtn_core::time::Duration;

    fn item(id: u64, size: u64, expires: u64) -> DataItem {
        DataItem::new(DataId(id), NodeId(0), size, Time(0), Duration(expires))
    }

    #[test]
    fn insert_tracks_usage() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 30, 10)).expect("fits");
        b.insert(item(2, 50, 10)).expect("fits");
        assert_eq!(b.used(), 80);
        assert_eq!(b.free(), 20);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn insert_rejects_when_full() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        let err = b.insert(item(2, 30, 10)).unwrap_err();
        assert_eq!(
            err,
            InsufficientSpace {
                needed: 30,
                free: 20
            }
        );
        assert!(err.to_string().contains("30"));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        b.insert(item(1, 80, 10)).expect("duplicate is fine");
        assert_eq!(b.used(), 80);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        let removed = b.remove(DataId(1)).expect("present");
        assert_eq!(removed.size, 80);
        assert_eq!(b.used(), 0);
        assert!(b.remove(DataId(1)).is_none());
    }

    #[test]
    fn remove_middle_keeps_lookups_consistent() {
        // swap_remove moves the tail item into the hole; the index must
        // follow it.
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        b.insert(item(2, 10, 50)).expect("fits");
        b.insert(item(3, 10, 50)).expect("fits");
        b.remove(DataId(1)).expect("present");
        assert_eq!(b.get(DataId(3)).map(|d| d.id), Some(DataId(3)));
        assert_eq!(b.get(DataId(2)).map(|d| d.id), Some(DataId(2)));
        assert!(b.get(DataId(1)).is_none());
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn drop_expired_only_removes_dead_items() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        b.insert(item(2, 10, 200)).expect("fits");
        assert_eq!(b.drop_expired(Time(100)), 1);
        assert!(!b.contains(DataId(1)));
        assert!(b.contains(DataId(2)));
        assert_eq!(b.used(), 10);
    }

    #[test]
    fn drop_expired_handles_adjacent_dead_items() {
        // Two dead items in a row exercises the "re-examine pos after
        // swap_remove" path.
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        b.insert(item(2, 10, 300)).expect("fits");
        b.insert(item(3, 10, 60)).expect("fits");
        b.insert(item(4, 10, 70)).expect("fits");
        assert_eq!(b.drop_expired(Time(100)), 3);
        assert_eq!(b.len(), 1);
        assert!(b.contains(DataId(2)));
        assert_eq!(b.used(), 10);
    }

    #[test]
    fn generation_counts_content_changes_only() {
        let mut b = Buffer::new(100);
        assert_eq!(b.generation(), 0);
        b.insert(item(1, 10, 50)).expect("fits");
        assert_eq!(b.generation(), 1);
        b.insert(item(1, 10, 50)).expect("duplicate");
        assert_eq!(b.generation(), 1, "duplicate insert must not bump");
        assert!(b.remove(DataId(9)).is_none());
        assert_eq!(b.generation(), 1, "missing remove must not bump");
        b.remove(DataId(1)).expect("present");
        assert_eq!(b.generation(), 2);
        b.insert(item(2, 10, 50)).expect("fits");
        b.insert(item(3, 10, 1)).expect("fits");
        assert_eq!(b.generation(), 4);
        assert_eq!(b.drop_expired(Time(10)), 1);
        assert_eq!(b.generation(), 5);
    }

    #[test]
    fn get_and_iter() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        assert_eq!(b.get(DataId(1)).map(|d| d.size), Some(10));
        assert_eq!(b.iter().count(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64),
            Remove(u64),
            DropExpired(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..20, 1u64..60).prop_map(|(id, size)| Op::Insert(id, size)),
                (0u64..20).prop_map(Op::Remove),
                (0u64..500).prop_map(Op::DropExpired),
            ]
        }

        proptest! {
            /// Accounting invariant: under arbitrary operation sequences
            /// the used-byte counter always equals the sum of stored item
            /// sizes, never exceeds capacity, and the side index agrees
            /// with the slot storage.
            #[test]
            fn usage_accounting_is_exact(
                ops in prop::collection::vec(op_strategy(), 0..60),
                capacity in 1u64..200,
            ) {
                let mut b = Buffer::new(capacity);
                for op in ops {
                    match op {
                        Op::Insert(id, size) => {
                            let _ = b.insert(DataItem::new(
                                DataId(id), NodeId(0), size, Time(0), Duration(100 + id),
                            ));
                        }
                        Op::Remove(id) => {
                            let _ = b.remove(DataId(id));
                        }
                        Op::DropExpired(now) => {
                            let _ = b.drop_expired(Time(now));
                        }
                    }
                    let actual: u64 = b.iter().map(|d| d.size).sum();
                    prop_assert_eq!(b.used(), actual);
                    prop_assert!(b.used() <= b.capacity());
                    prop_assert_eq!(b.free(), b.capacity() - b.used());
                    prop_assert_eq!(b.len(), b.iter().count());
                    // Index ↔ slots agreement.
                    for d in b.iter() {
                        prop_assert!(b.contains(d.id));
                        prop_assert_eq!(b.get(d.id).map(|x| x.size), Some(d.size));
                    }
                }
            }
        }
    }
}
