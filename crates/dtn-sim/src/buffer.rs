//! Finite per-node caching buffers.
//!
//! "The basic prerequisite is that each node has only limited buffer for
//! caching" (§III-A). A [`Buffer`] tracks which [`DataItem`]s a node
//! holds and enforces the byte capacity; *what* to evict is the caching
//! scheme's decision (see the `dtn-cache` crate), so the buffer only
//! offers mechanical insert/remove plus expiry cleanup.

use std::collections::HashMap;

use dtn_core::ids::DataId;
use dtn_core::time::Time;

use crate::message::DataItem;

/// A byte-capacity-limited store of data items.
///
/// # Example
///
/// ```
/// use dtn_core::ids::{DataId, NodeId};
/// use dtn_core::time::{Duration, Time};
/// use dtn_sim::buffer::Buffer;
/// use dtn_sim::message::DataItem;
///
/// let mut buf = Buffer::new(100);
/// let item = DataItem::new(DataId(1), NodeId(0), 60, Time(0), Duration(100));
/// assert!(buf.insert(item).is_ok());
/// // A second 60-byte item does not fit.
/// let item2 = DataItem::new(DataId(2), NodeId(0), 60, Time(0), Duration(100));
/// assert!(buf.insert(item2).is_err());
/// assert_eq!(buf.free(), 40);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Buffer {
    capacity: u64,
    used: u64,
    items: HashMap<DataId, DataItem>,
}

/// Error returned when an item does not fit into a buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsufficientSpace {
    /// Bytes the item needs.
    pub needed: u64,
    /// Bytes currently free.
    pub free: u64,
}

impl std::fmt::Display for InsufficientSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "insufficient buffer space: need {} bytes, {} free",
            self.needed, self.free
        )
    }
}

impl std::error::Error for InsufficientSpace {}

impl Buffer {
    /// Creates an empty buffer of `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        Buffer {
            capacity,
            used: 0,
            items: HashMap::new(),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently occupied.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.capacity - self.used
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the item would fit right now.
    pub fn fits(&self, size: u64) -> bool {
        size <= self.free()
    }

    /// Inserts an item.
    ///
    /// Re-inserting an id the buffer already holds is a no-op success
    /// (the node already has the copy).
    ///
    /// # Errors
    ///
    /// Returns [`InsufficientSpace`] if the item does not fit.
    pub fn insert(&mut self, item: DataItem) -> Result<(), InsufficientSpace> {
        if self.items.contains_key(&item.id) {
            return Ok(());
        }
        if !self.fits(item.size) {
            return Err(InsufficientSpace {
                needed: item.size,
                free: self.free(),
            });
        }
        self.used += item.size;
        self.items.insert(item.id, item);
        Ok(())
    }

    /// Removes and returns an item.
    pub fn remove(&mut self, id: DataId) -> Option<DataItem> {
        let item = self.items.remove(&id)?;
        self.used -= item.size;
        Some(item)
    }

    /// Whether the buffer holds `id`.
    pub fn contains(&self, id: DataId) -> bool {
        self.items.contains_key(&id)
    }

    /// The stored item with this id, if any.
    pub fn get(&self, id: DataId) -> Option<&DataItem> {
        self.items.get(&id)
    }

    /// Iterates over the stored items in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &DataItem> {
        self.items.values()
    }

    /// Drops every item that has expired by `now`; returns how many were
    /// dropped.
    pub fn drop_expired(&mut self, now: Time) -> usize {
        let dead: Vec<DataId> = self
            .items
            .values()
            .filter(|d| !d.is_alive(now))
            .map(|d| d.id)
            .collect();
        for id in &dead {
            self.remove(*id);
        }
        dead.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::NodeId;
    use dtn_core::time::Duration;

    fn item(id: u64, size: u64, expires: u64) -> DataItem {
        DataItem::new(DataId(id), NodeId(0), size, Time(0), Duration(expires))
    }

    #[test]
    fn insert_tracks_usage() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 30, 10)).expect("fits");
        b.insert(item(2, 50, 10)).expect("fits");
        assert_eq!(b.used(), 80);
        assert_eq!(b.free(), 20);
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn insert_rejects_when_full() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        let err = b.insert(item(2, 30, 10)).unwrap_err();
        assert_eq!(
            err,
            InsufficientSpace {
                needed: 30,
                free: 20
            }
        );
        assert!(err.to_string().contains("30"));
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        b.insert(item(1, 80, 10)).expect("duplicate is fine");
        assert_eq!(b.used(), 80);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 80, 10)).expect("fits");
        let removed = b.remove(DataId(1)).expect("present");
        assert_eq!(removed.size, 80);
        assert_eq!(b.used(), 0);
        assert!(b.remove(DataId(1)).is_none());
    }

    #[test]
    fn drop_expired_only_removes_dead_items() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        b.insert(item(2, 10, 200)).expect("fits");
        assert_eq!(b.drop_expired(Time(100)), 1);
        assert!(!b.contains(DataId(1)));
        assert!(b.contains(DataId(2)));
        assert_eq!(b.used(), 10);
    }

    #[test]
    fn get_and_iter() {
        let mut b = Buffer::new(100);
        b.insert(item(1, 10, 50)).expect("fits");
        assert_eq!(b.get(DataId(1)).map(|d| d.size), Some(10));
        assert_eq!(b.iter().count(), 1);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64),
            Remove(u64),
            DropExpired(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..20, 1u64..60).prop_map(|(id, size)| Op::Insert(id, size)),
                (0u64..20).prop_map(Op::Remove),
                (0u64..500).prop_map(Op::DropExpired),
            ]
        }

        proptest! {
            /// Accounting invariant: under arbitrary operation sequences
            /// the used-byte counter always equals the sum of stored item
            /// sizes and never exceeds capacity.
            #[test]
            fn usage_accounting_is_exact(
                ops in prop::collection::vec(op_strategy(), 0..60),
                capacity in 1u64..200,
            ) {
                let mut b = Buffer::new(capacity);
                for op in ops {
                    match op {
                        Op::Insert(id, size) => {
                            let _ = b.insert(DataItem::new(
                                DataId(id), NodeId(0), size, Time(0), Duration(100 + id),
                            ));
                        }
                        Op::Remove(id) => {
                            let _ = b.remove(DataId(id));
                        }
                        Op::DropExpired(now) => {
                            let _ = b.drop_expired(Time(now));
                        }
                    }
                    let actual: u64 = b.iter().map(|d| d.size).sum();
                    prop_assert_eq!(b.used(), actual);
                    prop_assert!(b.used() <= b.capacity());
                    prop_assert_eq!(b.free(), b.capacity() - b.used());
                    prop_assert_eq!(b.len(), b.iter().count());
                }
            }
        }
    }
}
