//! Hierarchical wall-clock phase profiler.
//!
//! The engine (and, through [`SimCtx`], the schemes) brackets its
//! phases with [`Profiler::enter`]/[`Profiler::exit`] spans. Spans
//! nest: entering a phase while another is open creates (or reuses) a
//! child node, so the aggregate is a tree keyed by *call path*, not
//! just phase name — `audit_sweep` under `contact_commit` and
//! `audit_sweep` under `epoch_maintenance` are separate rows. Each node
//! accumulates call count and total wall time; self time (total minus
//! children) is derived at report time.
//!
//! Zero-cost discipline matches [`ProbeSink`]: the engine carries
//! `Option<Box<Profiler>>` — one machine word, one predicted branch per
//! span site when disabled, and the `sim_engine`/`telemetry` benches
//! hold the disabled overhead within 5 % of the committed baseline.
//!
//! [`SimCtx`]: crate::engine::SimCtx
//! [`ProbeSink`]: crate::probe::ProbeSink

use std::time::Instant;

/// The engine and scheme phases the profiler knows. Fixed enum — span
/// sites never format strings on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Windowed executor: pulling contacts into a bounded window.
    ContactGather,
    /// Windowed executor: the read-only parallel plan over batches
    /// (in practice: parallel path-oracle priming).
    ContactPlan,
    /// Committing one contact through the serial dispatch path (serial
    /// runs spend almost everything here).
    ContactCommit,
    /// Workload injection (data generation and query issue hooks).
    Workload,
    /// The periodic [`Scheme::on_epoch`] maintenance callback.
    ///
    /// [`Scheme::on_epoch`]: crate::engine::Scheme::on_epoch
    EpochMaintenance,
    /// Maintenance-driven contact-graph refresh, central re-selection
    /// and oracle invalidation (nested under epoch maintenance).
    OracleRebuild,
    /// Knapsack cache-replacement solves (Algorithm 1 / DP).
    KnapsackSolve,
    /// One invariant-audit sweep.
    AuditSweep,
    /// Periodic cache-occupancy sampling.
    Sample,
}

impl Phase {
    /// Stable snake-case name, used by reports and the JSONL export.
    pub fn name(self) -> &'static str {
        match self {
            Phase::ContactGather => "contact_gather",
            Phase::ContactPlan => "contact_plan",
            Phase::ContactCommit => "contact_commit",
            Phase::Workload => "workload",
            Phase::EpochMaintenance => "epoch_maintenance",
            Phase::OracleRebuild => "oracle_rebuild",
            Phase::KnapsackSolve => "knapsack_solve",
            Phase::AuditSweep => "audit_sweep",
            Phase::Sample => "sample",
        }
    }
}

/// One aggregated node of the span tree.
#[derive(Debug, Clone)]
struct Node {
    phase: Phase,
    children: Vec<usize>,
    calls: u64,
    total: std::time::Duration,
}

/// The span aggregator. See the module docs for the discipline.
#[derive(Debug, Default)]
pub struct Profiler {
    nodes: Vec<Node>,
    roots: Vec<usize>,
    /// Open spans: (node index, start instant).
    stack: Vec<(usize, Instant)>,
}

impl Profiler {
    /// An empty profiler with no open spans.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Opens a span for `phase` nested under the currently open span
    /// (or as a root). Must be balanced by [`Profiler::exit`].
    pub fn enter(&mut self, phase: Phase) {
        let parent = self.stack.last().map(|&(i, _)| i);
        let idx = self.find_or_create(parent, phase);
        self.stack.push((idx, Instant::now()));
    }

    /// Closes the innermost open span, charging its elapsed wall time.
    ///
    /// # Panics
    ///
    /// Panics if no span is open — an unbalanced span site is a bug.
    pub fn exit(&mut self) {
        let (idx, started) = self.stack.pop().expect("profiler span underflow");
        let node = &mut self.nodes[idx];
        node.calls += 1;
        node.total += started.elapsed();
    }

    fn find_or_create(&mut self, parent: Option<usize>, phase: Phase) -> usize {
        let existing = match parent {
            Some(p) => self.nodes[p]
                .children
                .iter()
                .copied()
                .find(|&i| self.nodes[i].phase == phase),
            None => self
                .roots
                .iter()
                .copied()
                .find(|&i| self.nodes[i].phase == phase),
        };
        if let Some(i) = existing {
            return i;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            phase,
            children: Vec::new(),
            calls: 0,
            total: std::time::Duration::ZERO,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        idx
    }

    /// Snapshots the aggregated tree. Open spans are not included.
    pub fn report(&self) -> ProfileReport {
        let mut entries = Vec::with_capacity(self.nodes.len());
        for &root in &self.roots {
            self.walk(root, 0, &mut entries);
        }
        ProfileReport { entries }
    }

    fn walk(&self, idx: usize, depth: usize, out: &mut Vec<ProfileEntry>) {
        let node = &self.nodes[idx];
        let children_total: std::time::Duration =
            node.children.iter().map(|&c| self.nodes[c].total).sum();
        out.push(ProfileEntry {
            phase: node.phase.name(),
            depth,
            calls: node.calls,
            total_ns: node.total.as_nanos() as u64,
            self_ns: node.total.saturating_sub(children_total).as_nanos() as u64,
        });
        for &c in &node.children {
            self.walk(c, depth + 1, out);
        }
    }
}

/// One row of the aggregated report, preorder (parents before
/// children), with `depth` giving the nesting level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Phase name ([`Phase::name`]).
    pub phase: &'static str,
    /// Nesting depth in the span tree (0 = root).
    pub depth: usize,
    /// Completed spans aggregated into this node.
    pub calls: u64,
    /// Total wall time, including children.
    pub total_ns: u64,
    /// Total minus the children's totals.
    pub self_ns: u64,
}

/// The preorder span-tree snapshot of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Rows, parents before children.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileReport {
    /// Sum of root totals — the profiled share of the run.
    pub fn total_ns(&self) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.depth == 0)
            .map(|e| e.total_ns)
            .sum()
    }

    /// Renders the tree as an indented self/total/calls table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("-- phase profile --\n");
        let _ = writeln!(
            out,
            "{:<40} {:>10} {:>12} {:>12} {:>7}",
            "phase", "calls", "total ms", "self ms", "self %"
        );
        let grand = self.total_ns().max(1) as f64;
        for e in &self.entries {
            let label = format!("{}{}", "  ".repeat(e.depth), e.phase);
            let _ = writeln!(
                out,
                "{:<40} {:>10} {:>12.3} {:>12.3} {:>6.1}%",
                label,
                e.calls,
                e.total_ns as f64 / 1e6,
                e.self_ns as f64 / 1e6,
                e.self_ns as f64 / grand * 100.0
            );
        }
        out
    }

    /// One `{"type":"phase",...}` JSONL line per row (hand-rolled, the
    /// workspace carries no serde). Consumed by `experiments compare`.
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{{\"type\":\"phase\",\"phase\":\"{}\",\"depth\":{},\"calls\":{},\
                 \"total_ns\":{},\"self_ns\":{}}}",
                e.phase, e.depth, e.calls, e.total_ns, e.self_ns
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_aggregate_by_call_path() {
        let mut p = Profiler::new();
        for _ in 0..3 {
            p.enter(Phase::ContactCommit);
            p.enter(Phase::KnapsackSolve);
            p.exit();
            p.enter(Phase::AuditSweep);
            p.exit();
            p.exit();
        }
        p.enter(Phase::EpochMaintenance);
        p.enter(Phase::AuditSweep);
        p.exit();
        p.exit();

        let report = p.report();
        let find = |phase: &str, depth: usize| {
            report
                .entries
                .iter()
                .find(|e| e.phase == phase && e.depth == depth)
                .unwrap_or_else(|| panic!("missing {phase} at depth {depth}"))
        };
        assert_eq!(find("contact_commit", 0).calls, 3);
        assert_eq!(find("knapsack_solve", 1).calls, 3);
        // audit_sweep appears twice: once under each parent path.
        assert_eq!(find("epoch_maintenance", 0).calls, 1);
        let audits: Vec<_> = report
            .entries
            .iter()
            .filter(|e| e.phase == "audit_sweep")
            .collect();
        assert_eq!(audits.len(), 2);
        assert_eq!(audits.iter().map(|e| e.calls).sum::<u64>(), 4);
    }

    #[test]
    fn self_time_is_total_minus_children() {
        let mut p = Profiler::new();
        p.enter(Phase::ContactCommit);
        p.enter(Phase::KnapsackSolve);
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.exit();
        p.exit();
        let report = p.report();
        let parent = &report.entries[0];
        let child = &report.entries[1];
        assert_eq!(parent.phase, "contact_commit");
        assert_eq!(child.phase, "knapsack_solve");
        assert!(parent.total_ns >= child.total_ns);
        assert_eq!(parent.self_ns, parent.total_ns - child.total_ns);
        assert_eq!(child.self_ns, child.total_ns);
        assert_eq!(report.total_ns(), parent.total_ns);
    }

    #[test]
    fn render_and_jsonl_cover_every_row() {
        let mut p = Profiler::new();
        p.enter(Phase::ContactGather);
        p.exit();
        p.enter(Phase::ContactPlan);
        p.exit();
        let report = p.report();
        let table = report.render();
        assert!(table.contains("contact_gather"));
        assert!(table.contains("contact_plan"));
        let jsonl = report.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl
            .lines()
            .all(|l| l.starts_with("{\"type\":\"phase\"") && l.ends_with('}')));
    }

    #[test]
    #[should_panic(expected = "span underflow")]
    fn unbalanced_exit_panics() {
        Profiler::new().exit();
    }
}
