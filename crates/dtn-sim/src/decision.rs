//! The placement/routing decision kernel shared by the simulation
//! engine and the online serving mode.
//!
//! The intentional scheme's contact hooks reduce every forwarding
//! choice to one comparison: *does the candidate carrier have a higher
//! opportunistic-path weight to the destination than the current
//! carrier?* (§V-A: "a relay forwards data to another node with higher
//! metric than itself"). [`DecisionPoint`] owns that comparison —
//! [`DecisionPoint::forward`] — plus the two request-level decisions a
//! serving deployment asks for:
//!
//! - [`DecisionPoint::place`]: where should a data item be cached?
//!   The NCL set (the elected central nodes) plus, per NCL, the best
//!   next relay toward that central node under the §V-A rule.
//! - [`DecisionPoint::route`]: where should a query go? The central
//!   target with the highest opportunistic weight from the requester,
//!   plus the best next relay toward it (§V-B pull).
//!
//! `dtn-cache`'s contact-time `better_relay` delegates to
//! [`DecisionPoint::forward`], and the scheme-side decision API
//! (`IntentionalScheme::decision_point`) borrows the scheme's *own*
//! oracle and central set — so a decision answered online is computed
//! by exactly the code path and exactly the state the engine uses at
//! the next contact. That shared code path is what the serve-vs-engine
//! differential tests pin.
//!
//! All oracle reads go through the generation-versioned snapshot inside
//! [`PathOracle`]: a decision never blocks on a refresh, it reads the
//! current snapshot; staleness is bounded by the oracle's refresh
//! interval.

use dtn_core::ids::NodeId;
use dtn_core::rate::RateTable;
use dtn_core::time::Time;

use crate::oracle::PathOracle;

/// One NCL's slice of a placement decision: the central node the copy
/// should migrate toward and the best currently-known next relay.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayPlan {
    /// NCL index (position in the central-node set).
    pub ncl: usize,
    /// The central node this NCL's copy is pushed toward.
    pub central: NodeId,
    /// Opportunistic-path weight from the current carrier to `central`.
    pub carrier_weight: f64,
    /// The best next relay under the §V-A rule — the candidate with the
    /// highest weight to `central`, provided it strictly beats the
    /// carrier. `None` when the carrier is already the best placed (or
    /// already *is* the central node).
    pub next_hop: Option<NodeId>,
}

/// Answer to `Place(data)`: the NCL set and one relay plan per NCL.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementDecision {
    /// The elected central nodes, in NCL order.
    pub ncls: Vec<NodeId>,
    /// Per-NCL relay plan for the copy currently at the source.
    pub plan: Vec<RelayPlan>,
}

/// Answer to `Route(query)`: the central target and next relay.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// NCL index of the chosen central target.
    pub ncl: usize,
    /// The central node with the highest opportunistic weight from the
    /// requester (ties break toward the lower NCL index — the paper's
    /// NCL priority order).
    pub central: NodeId,
    /// Weight from the requester to that central node.
    pub central_weight: f64,
    /// The best next relay toward `central` under the §V-A rule, as in
    /// [`RelayPlan::next_hop`].
    pub next_hop: Option<NodeId>,
}

/// A borrowed view of the decision state: the path oracle (snapshot
/// reads), the live contact-rate table, the decision time and the
/// elected central set. Construct via
/// `IntentionalScheme::decision_point` to borrow the engine scheme's
/// own state, or [`DecisionPoint::new`] for standalone use.
#[derive(Debug)]
pub struct DecisionPoint<'a> {
    oracle: &'a mut PathOracle,
    rates: &'a RateTable,
    now: Time,
    centrals: &'a [NodeId],
}

impl<'a> DecisionPoint<'a> {
    /// A decision point over explicit state.
    pub fn new(
        oracle: &'a mut PathOracle,
        rates: &'a RateTable,
        now: Time,
        centrals: &'a [NodeId],
    ) -> Self {
        DecisionPoint {
            oracle,
            rates,
            now,
            centrals,
        }
    }

    /// The decision time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The elected central nodes, in NCL order.
    pub fn centrals(&self) -> &[NodeId] {
        self.centrals
    }

    /// Opportunistic-path weight from `from` to `dest` at the decision
    /// time (a snapshot read; may lazily refresh the table for `from`).
    pub fn weight(&mut self, from: NodeId, dest: NodeId) -> f64 {
        self.oracle.weight(self.rates, self.now, from, dest)
    }

    /// The oracle's generation-versioned snapshot epoch — bumps when a
    /// background refresh replaces the snapshot, so a serving loop can
    /// report which oracle generation answered each decision.
    pub fn snapshot_epoch(&self) -> u64 {
        self.oracle.snapshot_epoch()
    }

    /// Pre-stages the path searches for `sources` against the current
    /// snapshot on up to `threads` workers (the background-refresh arm
    /// of the serving loop) — see [`PathOracle::prime_sources`].
    /// Decision reads never block on this: they consume staged results
    /// when fresh and fall back to the serial miss path otherwise, with
    /// bit-identical weights either way.
    pub fn prime(&mut self, sources: &[NodeId], threads: usize) {
        self.oracle
            .prime_sources(self.rates, self.now, sources, threads);
    }

    /// THE greedy relay rule (§V-A): forward a message carried by
    /// `from` to `to` iff `to` has a strictly better opportunistic-path
    /// weight to `dest`. The destination always accepts; a carrier at
    /// the destination never forwards.
    ///
    /// This is the single decision the engine makes at every contact —
    /// `dtn_cache::common::better_relay` is a thin wrapper over it.
    pub fn forward(&mut self, from: NodeId, to: NodeId, dest: NodeId) -> bool {
        if to == dest {
            return true;
        }
        if from == dest {
            return false;
        }
        self.weight(to, dest) > self.weight(from, dest)
    }

    /// The best next relay from `carrier` toward `dest` among
    /// `candidates`: the candidate with the highest weight to `dest`
    /// that the §V-A rule would accept ([`forward`](Self::forward)
    /// answers true). Ties break toward the earlier candidate, so the
    /// answer is deterministic for a fixed candidate order. `None` when
    /// no candidate beats the carrier.
    pub fn best_relay(
        &mut self,
        carrier: NodeId,
        dest: NodeId,
        candidates: &[NodeId],
    ) -> Option<NodeId> {
        let mut best: Option<(NodeId, f64)> = None;
        for &c in candidates {
            if c == carrier || !self.forward(carrier, c, dest) {
                continue;
            }
            let w = if c == dest {
                f64::INFINITY
            } else {
                self.weight(c, dest)
            };
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((c, w));
            }
        }
        best.map(|(n, _)| n)
    }

    /// `Place(data)` for a copy currently at `source`: the NCL set plus
    /// one [`RelayPlan`] per NCL over `candidates`.
    pub fn place(&mut self, source: NodeId, candidates: &[NodeId]) -> PlacementDecision {
        let ncls = self.centrals.to_vec();
        let plan = ncls
            .iter()
            .enumerate()
            .map(|(k, &central)| RelayPlan {
                ncl: k,
                central,
                carrier_weight: self.weight(source, central),
                next_hop: self.best_relay(source, central, candidates),
            })
            .collect();
        PlacementDecision { ncls, plan }
    }

    /// `Route(query)` for a requester: the best central target by
    /// opportunistic weight (lower NCL index wins ties) and the best
    /// next relay toward it over `candidates`. `None` when no central
    /// nodes are elected.
    pub fn route(&mut self, requester: NodeId, candidates: &[NodeId]) -> Option<RouteDecision> {
        let mut best: Option<(usize, NodeId, f64)> = None;
        for (k, &central) in self.centrals.iter().enumerate() {
            let w = if requester == central {
                f64::INFINITY
            } else {
                self.weight(requester, central)
            };
            if best.is_none_or(|(_, _, bw)| w > bw) {
                best = Some((k, central, w));
            }
        }
        let (ncl, central, central_weight) = best?;
        Some(RouteDecision {
            ncl,
            central,
            central_weight,
            next_hop: self.best_relay(requester, central, candidates),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::Duration;

    /// 0 — 1 — 2 line with frequent contacts; node 2 is the hub side.
    fn rates_line() -> RateTable {
        let mut r = RateTable::new(4, Time::ZERO);
        for t in 1..=5u64 {
            r.record(NodeId(0), NodeId(1), Time(t * 100));
            r.record(NodeId(1), NodeId(2), Time(t * 100));
        }
        r
    }

    fn oracle() -> PathOracle {
        PathOracle::new(4, 1000.0, Duration::hours(1))
    }

    #[test]
    fn forward_matches_the_greedy_relay_rule() {
        let rates = rates_line();
        let mut o = oracle();
        let centrals = [NodeId(2)];
        let mut dp = DecisionPoint::new(&mut o, &rates, Time(600), &centrals);
        // Destination always accepts; carrier at destination never forwards.
        assert!(dp.forward(NodeId(0), NodeId(2), NodeId(2)));
        assert!(!dp.forward(NodeId(2), NodeId(0), NodeId(2)));
        // 1 is closer to 2 than 0 is.
        assert!(dp.forward(NodeId(0), NodeId(1), NodeId(2)));
        assert!(!dp.forward(NodeId(1), NodeId(0), NodeId(2)));
    }

    #[test]
    fn place_plans_one_relay_per_ncl() {
        let rates = rates_line();
        let mut o = oracle();
        let centrals = [NodeId(2), NodeId(0)];
        let mut dp = DecisionPoint::new(&mut o, &rates, Time(600), &centrals);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        let d = dp.place(NodeId(0), &nodes);
        assert_eq!(d.ncls, vec![NodeId(2), NodeId(0)]);
        assert_eq!(d.plan.len(), 2);
        // Toward central 2 the destination itself is the best relay.
        assert_eq!(d.plan[0].next_hop, Some(NodeId(2)));
        // The copy already sits at central 0: nothing beats staying.
        assert_eq!(d.plan[1].next_hop, None);
        assert!(d.plan[0].carrier_weight <= 1.0);
    }

    #[test]
    fn route_picks_the_best_central_with_deterministic_ties() {
        let rates = rates_line();
        let mut o = oracle();
        let centrals = [NodeId(2), NodeId(0)];
        let mut dp = DecisionPoint::new(&mut o, &rates, Time(600), &centrals);
        let nodes: Vec<NodeId> = (0..4).map(NodeId).collect();
        // Node 1 meets both 0 and 2 equally often: the tie breaks to
        // the lower NCL index.
        let r = dp.route(NodeId(1), &nodes).expect("centrals elected");
        assert_eq!(r.ncl, 0);
        assert_eq!(r.central, NodeId(2));
        assert_eq!(r.next_hop, Some(NodeId(2)), "direct contact wins");
        // A requester that *is* a central routes to itself, no hop.
        let r = dp.route(NodeId(2), &nodes).expect("centrals elected");
        assert_eq!(r.central, NodeId(2));
        assert_eq!(r.next_hop, None);
        // Node 3 is isolated: weights are all zero, the tie breaks to
        // NCL 0, and no relay strictly beats the carrier.
        let r = dp.route(NodeId(3), &nodes).expect("centrals elected");
        assert_eq!(r.ncl, 0);
        assert_eq!(r.next_hop, Some(NodeId(2)), "destination always accepts");
    }

    #[test]
    fn empty_central_set_routes_to_none() {
        let rates = rates_line();
        let mut o = oracle();
        let centrals: [NodeId; 0] = [];
        let mut dp = DecisionPoint::new(&mut o, &rates, Time(600), &centrals);
        assert!(dp.route(NodeId(0), &[NodeId(1)]).is_none());
        let d = dp.place(NodeId(0), &[NodeId(1)]);
        assert!(d.ncls.is_empty() && d.plan.is_empty());
    }
}
