//! Zero-cost observability probes.
//!
//! A [`Probe`] receives structured [`ProbeEvent`]s from every layer of
//! the simulation — the engine (contacts, transmissions, workload
//! injection, epochs, deliveries), the caching schemes (push relays and
//! settles, query pulls, NCL broadcasts, probabilistic response
//! decisions, replacement evictions) and the path oracle (snapshot
//! rebuilds and invalidations) — through one shared event vocabulary.
//!
//! The engine stores a [`ProbeSink`]; every emission site goes through
//! [`ProbeSink::emit`], which takes a *closure* producing the event, so
//! with the default [`NoopProbe`] the only cost per site is a single
//! predicted branch on the sink's enum tag — the event is never even
//! constructed. The `sim_engine`/`path_engine` benches run with the
//! noop sink and must stay within noise of the committed
//! `BENCH_*.json` baselines.
//!
//! [`RecordingProbe`] is the batteries-included sink: it counts every
//! event kind, assembles a per-query [`QueryTrace`] (issue →
//! first-central-arrival → broadcast fan-out → response → delivery,
//! with per-hop timestamps), buckets delays/hops/occupancy into
//! alloc-free [`Histogram`]s, and can retain the raw event stream for
//! JSONL export (`experiments -- observe`).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use dtn_core::hist::Histogram;
use dtn_core::ids::{DataId, NodeId, QueryId};
use dtn_core::time::Time;

use crate::engine::DeliveryOutcome;

/// One structured observation, emitted by the engine, a scheme or the
/// path oracle. `at` is always the simulation time of the emission.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbeEvent {
    // -------- engine --------
    /// A contact opened; `budget` is its total transmission capacity.
    ContactBegin {
        at: Time,
        a: NodeId,
        b: NodeId,
        budget: u64,
    },
    /// The contact's scheme hook returned; `bytes_used` of the budget
    /// were consumed.
    ContactEnd {
        at: Time,
        a: NodeId,
        b: NodeId,
        bytes_used: u64,
    },
    /// Fault injection dropped the contact before the nodes saw it.
    ContactLost { at: Time, a: NodeId, b: NodeId },
    /// A workload data item entered the network at its source.
    DataInjected {
        at: Time,
        data: DataId,
        source: NodeId,
        size: u64,
    },
    /// A workload query was issued.
    QueryInjected {
        at: Time,
        query: QueryId,
        requester: NodeId,
        data: DataId,
        expires_at: Time,
    },
    /// The periodic maintenance epoch fired.
    EpochFired { at: Time, index: u64 },
    /// A transmission fit the remaining contact budget.
    TransmitAccepted { at: Time, bytes: u64 },
    /// A transmission exceeded the remaining contact budget.
    TransmitRejected { at: Time, bytes: u64 },
    /// A delivery was reported to the engine (any outcome).
    Delivery {
        at: Time,
        query: QueryId,
        outcome: DeliveryOutcome,
    },
    /// A periodic cache-occupancy sample was taken.
    CacheSampled { at: Time, copies: u64, bytes: u64 },

    // -------- schemes --------
    /// §V-A: a push copy moved one hop toward its central node.
    PushRelay {
        at: Time,
        data: DataId,
        from: NodeId,
        to: NodeId,
        ncl: usize,
    },
    /// §V-A: a push copy settled (cached) at `node` for NCL `ncl`.
    PushSettled {
        at: Time,
        data: DataId,
        node: NodeId,
        ncl: usize,
    },
    /// A query copy moved one hop (pull phase, or baseline forwarding).
    QueryRelay {
        at: Time,
        query: QueryId,
        from: NodeId,
        to: NodeId,
    },
    /// §V-B: a query copy reached its central node.
    QueryAtCentral {
        at: Time,
        query: QueryId,
        ncl: usize,
    },
    /// §V-B: an NCL-internal broadcast reached one more member.
    BroadcastSpread {
        at: Time,
        query: QueryId,
        node: NodeId,
    },
    /// §V-C: a caching node drew its probabilistic response decision.
    ResponseDecision {
        at: Time,
        query: QueryId,
        node: NodeId,
        probability: f64,
        responded: bool,
    },
    /// A data response to `query` was created at `node`.
    ResponseSpawned {
        at: Time,
        query: QueryId,
        node: NodeId,
    },
    /// A response message moved one hop toward the requester.
    ResponseRelay {
        at: Time,
        query: QueryId,
        from: NodeId,
        to: NodeId,
    },
    /// Cache replacement evicted `data` from `node`'s buffer.
    ReplacementEvicted {
        at: Time,
        node: NodeId,
        data: DataId,
    },
    /// Online re-election changed NCL slot `ncl` from `old` to `new`.
    CentralReelected {
        at: Time,
        ncl: usize,
        old: NodeId,
        new: NodeId,
    },

    // -------- oracle --------
    /// The path oracle rebuilt its contact-graph snapshot. The counters
    /// are cumulative [`OracleStats`](crate::oracle::OracleStats)
    /// values at the time of the rebuild.
    OracleRebuilt {
        at: Time,
        epoch: u64,
        table_recomputes: u64,
        table_hits: u64,
    },
    /// The oracle's snapshot was explicitly invalidated (re-election).
    OracleInvalidated { at: Time },

    // -------- parallel executor --------
    /// The windowed executor processed one contact window: `contacts`
    /// contacts packed into `batches` endpoint-disjoint batches, the
    /// widest holding `widest` contacts; `conflicts` counts contacts
    /// that a node collision kept out of the window's first batch.
    /// Emitted only when `SimConfig::threads > 1` — the one deliberate
    /// difference between serial and parallel probe streams.
    ParallelWindow {
        at: Time,
        contacts: u64,
        batches: u64,
        widest: u64,
        conflicts: u64,
    },
}

impl ProbeEvent {
    /// Every event kind, in the order of the counter table.
    pub const KINDS: [&'static str; 23] = [
        "contact_begin",
        "contact_end",
        "contact_lost",
        "data_injected",
        "query_injected",
        "epoch_fired",
        "transmit_accepted",
        "transmit_rejected",
        "delivery",
        "cache_sampled",
        "push_relay",
        "push_settled",
        "query_relay",
        "query_at_central",
        "broadcast_spread",
        "response_decision",
        "response_spawned",
        "response_relay",
        "replacement_evicted",
        "central_reelected",
        "oracle_rebuilt",
        "oracle_invalidated",
        "parallel_window",
    ];

    /// Stable snake-case name of this event's kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::ContactBegin { .. } => "contact_begin",
            ProbeEvent::ContactEnd { .. } => "contact_end",
            ProbeEvent::ContactLost { .. } => "contact_lost",
            ProbeEvent::DataInjected { .. } => "data_injected",
            ProbeEvent::QueryInjected { .. } => "query_injected",
            ProbeEvent::EpochFired { .. } => "epoch_fired",
            ProbeEvent::TransmitAccepted { .. } => "transmit_accepted",
            ProbeEvent::TransmitRejected { .. } => "transmit_rejected",
            ProbeEvent::Delivery { .. } => "delivery",
            ProbeEvent::CacheSampled { .. } => "cache_sampled",
            ProbeEvent::PushRelay { .. } => "push_relay",
            ProbeEvent::PushSettled { .. } => "push_settled",
            ProbeEvent::QueryRelay { .. } => "query_relay",
            ProbeEvent::QueryAtCentral { .. } => "query_at_central",
            ProbeEvent::BroadcastSpread { .. } => "broadcast_spread",
            ProbeEvent::ResponseDecision { .. } => "response_decision",
            ProbeEvent::ResponseSpawned { .. } => "response_spawned",
            ProbeEvent::ResponseRelay { .. } => "response_relay",
            ProbeEvent::ReplacementEvicted { .. } => "replacement_evicted",
            ProbeEvent::CentralReelected { .. } => "central_reelected",
            ProbeEvent::OracleRebuilt { .. } => "oracle_rebuilt",
            ProbeEvent::OracleInvalidated { .. } => "oracle_invalidated",
            ProbeEvent::ParallelWindow { .. } => "parallel_window",
        }
    }

    /// The event's timestamp.
    pub fn at(&self) -> Time {
        match self {
            ProbeEvent::ContactBegin { at, .. }
            | ProbeEvent::ContactEnd { at, .. }
            | ProbeEvent::ContactLost { at, .. }
            | ProbeEvent::DataInjected { at, .. }
            | ProbeEvent::QueryInjected { at, .. }
            | ProbeEvent::EpochFired { at, .. }
            | ProbeEvent::TransmitAccepted { at, .. }
            | ProbeEvent::TransmitRejected { at, .. }
            | ProbeEvent::Delivery { at, .. }
            | ProbeEvent::CacheSampled { at, .. }
            | ProbeEvent::PushRelay { at, .. }
            | ProbeEvent::PushSettled { at, .. }
            | ProbeEvent::QueryRelay { at, .. }
            | ProbeEvent::QueryAtCentral { at, .. }
            | ProbeEvent::BroadcastSpread { at, .. }
            | ProbeEvent::ResponseDecision { at, .. }
            | ProbeEvent::ResponseSpawned { at, .. }
            | ProbeEvent::ResponseRelay { at, .. }
            | ProbeEvent::ReplacementEvicted { at, .. }
            | ProbeEvent::CentralReelected { at, .. }
            | ProbeEvent::OracleRebuilt { at, .. }
            | ProbeEvent::OracleInvalidated { at, .. }
            | ProbeEvent::ParallelWindow { at, .. } => *at,
        }
    }

    /// Renders the event as one JSON object (no trailing newline). The
    /// format is hand-rolled — the workspace carries no serde — and
    /// kept flat: `{"type":"event","kind":...,"at":...,<fields>}`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"type\":\"event\",\"kind\":\"{}\",\"at\":{}",
            self.kind(),
            self.at().0
        );
        use std::fmt::Write as _;
        match self {
            ProbeEvent::ContactBegin { a, b, budget, .. } => {
                let _ = write!(s, ",\"a\":{},\"b\":{},\"budget\":{budget}", a.0, b.0);
            }
            ProbeEvent::ContactEnd {
                a, b, bytes_used, ..
            } => {
                let _ = write!(
                    s,
                    ",\"a\":{},\"b\":{},\"bytes_used\":{bytes_used}",
                    a.0, b.0
                );
            }
            ProbeEvent::ContactLost { a, b, .. } => {
                let _ = write!(s, ",\"a\":{},\"b\":{}", a.0, b.0);
            }
            ProbeEvent::DataInjected {
                data, source, size, ..
            } => {
                let _ = write!(
                    s,
                    ",\"data\":{},\"source\":{},\"size\":{size}",
                    data.0, source.0
                );
            }
            ProbeEvent::QueryInjected {
                query,
                requester,
                data,
                expires_at,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"query\":{},\"requester\":{},\"data\":{},\"expires_at\":{}",
                    query.0, requester.0, data.0, expires_at.0
                );
            }
            ProbeEvent::EpochFired { index, .. } => {
                let _ = write!(s, ",\"index\":{index}");
            }
            ProbeEvent::TransmitAccepted { bytes, .. }
            | ProbeEvent::TransmitRejected { bytes, .. } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            ProbeEvent::Delivery { query, outcome, .. } => {
                let _ = write!(s, ",\"query\":{}", query.0);
                match outcome {
                    DeliveryOutcome::Accepted { delay } => {
                        let _ = write!(
                            s,
                            ",\"outcome\":\"accepted\",\"delay_secs\":{}",
                            delay.as_secs()
                        );
                    }
                    DeliveryOutcome::Duplicate => s.push_str(",\"outcome\":\"duplicate\""),
                    DeliveryOutcome::Late => s.push_str(",\"outcome\":\"late\""),
                    DeliveryOutcome::Unknown => s.push_str(",\"outcome\":\"unknown\""),
                }
            }
            ProbeEvent::CacheSampled { copies, bytes, .. } => {
                let _ = write!(s, ",\"copies\":{copies},\"bytes\":{bytes}");
            }
            ProbeEvent::PushRelay {
                data,
                from,
                to,
                ncl,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"data\":{},\"from\":{},\"to\":{},\"ncl\":{ncl}",
                    data.0, from.0, to.0
                );
            }
            ProbeEvent::PushSettled {
                data, node, ncl, ..
            } => {
                let _ = write!(s, ",\"data\":{},\"node\":{},\"ncl\":{ncl}", data.0, node.0);
            }
            ProbeEvent::QueryRelay {
                query, from, to, ..
            }
            | ProbeEvent::ResponseRelay {
                query, from, to, ..
            } => {
                let _ = write!(
                    s,
                    ",\"query\":{},\"from\":{},\"to\":{}",
                    query.0, from.0, to.0
                );
            }
            ProbeEvent::QueryAtCentral { query, ncl, .. } => {
                let _ = write!(s, ",\"query\":{},\"ncl\":{ncl}", query.0);
            }
            ProbeEvent::BroadcastSpread { query, node, .. }
            | ProbeEvent::ResponseSpawned { query, node, .. } => {
                let _ = write!(s, ",\"query\":{},\"node\":{}", query.0, node.0);
            }
            ProbeEvent::ResponseDecision {
                query,
                node,
                probability,
                responded,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"query\":{},\"node\":{},\"probability\":{probability:.6},\"responded\":{responded}",
                    query.0, node.0
                );
            }
            ProbeEvent::ReplacementEvicted { node, data, .. } => {
                let _ = write!(s, ",\"node\":{},\"data\":{}", node.0, data.0);
            }
            ProbeEvent::CentralReelected { ncl, old, new, .. } => {
                let _ = write!(s, ",\"ncl\":{ncl},\"old\":{},\"new\":{}", old.0, new.0);
            }
            ProbeEvent::OracleRebuilt {
                epoch,
                table_recomputes,
                table_hits,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"epoch\":{epoch},\"table_recomputes\":{table_recomputes},\"table_hits\":{table_hits}"
                );
            }
            ProbeEvent::OracleInvalidated { .. } => {}
            ProbeEvent::ParallelWindow {
                contacts,
                batches,
                widest,
                conflicts,
                ..
            } => {
                let _ = write!(
                    s,
                    ",\"contacts\":{contacts},\"batches\":{batches},\"widest\":{widest},\"conflicts\":{conflicts}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// A recorder of [`ProbeEvent`]s.
///
/// Object-safe by design: the engine stores `Box<dyn Probe>` behind the
/// [`ProbeSink`] enum, because schemes are themselves boxed trait
/// objects and a generic probe parameter could not cross that boundary.
pub trait Probe {
    /// Receives one event. Called synchronously from the hot loop —
    /// implementations should be cheap and must not panic.
    fn record(&mut self, event: &ProbeEvent);
}

/// The default probe: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {
    #[inline]
    fn record(&mut self, _event: &ProbeEvent) {}
}

/// A shared handle: lets the caller keep reading a probe that the
/// simulator owns (install `Box::new(rc.clone())`, inspect via `rc`).
impl<P: Probe> Probe for Rc<RefCell<P>> {
    fn record(&mut self, event: &ProbeEvent) {
        self.borrow_mut().record(event);
    }
}

/// Fans one event stream out to two probes in order — e.g. a
/// [`RecordingProbe`] and a [`Telemetry`](crate::telemetry::Telemetry)
/// recorder observing the same run. Nest tees for wider fan-out.
pub struct TeeProbe {
    first: Box<dyn Probe>,
    second: Box<dyn Probe>,
}

impl TeeProbe {
    /// A tee delivering every event to `first`, then `second`.
    pub fn new(first: Box<dyn Probe>, second: Box<dyn Probe>) -> Self {
        TeeProbe { first, second }
    }
}

impl Probe for TeeProbe {
    fn record(&mut self, event: &ProbeEvent) {
        self.first.record(event);
        self.second.record(event);
    }
}

/// The engine's probe slot: either disabled (the default — emission
/// sites reduce to one predicted branch, the event is never built) or
/// an installed recorder.
#[derive(Default)]
pub enum ProbeSink {
    /// No probe installed; [`ProbeSink::emit`] does nothing.
    #[default]
    Noop,
    /// An installed recorder receiving every event.
    Enabled(Box<dyn Probe>),
}

impl ProbeSink {
    /// Emits an event. `build` runs only when a probe is installed, so
    /// disabled emission sites never construct the event.
    #[inline]
    pub fn emit(&mut self, build: impl FnOnce() -> ProbeEvent) {
        if let ProbeSink::Enabled(probe) = self {
            probe.record(&build());
        }
    }

    /// Whether a probe is installed. Schemes use this to gate
    /// instrumentation work that a lazy closure cannot express (e.g.
    /// polling oracle counters).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        matches!(self, ProbeSink::Enabled(_))
    }
}

/// Which forwarding phase a recorded hop belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopPhase {
    /// Query pull toward a central node (or baseline query forwarding).
    Pull,
    /// Response forwarding back to the requester.
    Response,
}

impl HopPhase {
    fn name(self) -> &'static str {
        match self {
            HopPhase::Pull => "pull",
            HopPhase::Response => "response",
        }
    }
}

/// One recorded message hop of a query's lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HopRecord {
    /// When the hop happened.
    pub at: Time,
    /// Pull- or response-phase hop.
    pub phase: HopPhase,
    /// The relinquishing carrier.
    pub from: NodeId,
    /// The receiving carrier.
    pub to: NodeId,
}

/// The assembled lifecycle of one query: issue → first central arrival
/// → broadcast fan-out → response → delivery, with per-hop timestamps.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// The query.
    pub query: QueryId,
    /// Who asked.
    pub requester: NodeId,
    /// What was asked for.
    pub data: DataId,
    /// When the query was issued.
    pub issued_at: Time,
    /// When the query's time constraint runs out.
    pub expires_at: Time,
    /// First arrival at any central node, if one was reached.
    pub first_central_at: Option<Time>,
    /// The NCL slot of that first central arrival.
    pub first_central_ncl: Option<usize>,
    /// How many NCL members the internal broadcast reached.
    pub broadcast_fanout: u64,
    /// When the first data response was spawned, if any.
    pub first_response_at: Option<Time>,
    /// The node that spawned that first response.
    pub responder: Option<NodeId>,
    /// When the first in-time delivery happened (`None` = unsatisfied).
    pub delivered_at: Option<Time>,
    /// Every recorded pull/response hop, in order.
    pub hops: Vec<HopRecord>,
}

/// A satisfied query's end-to-end delay split into the protocol's three
/// phases. The phases always sum *exactly* to the query's metric delay
/// (`delivered_at − issued_at`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DelayDecomposition {
    /// Issue → first central arrival (the §V-B pull phase). Queries
    /// answered without reaching a central (local hits, baselines)
    /// attribute their whole delay here.
    pub pull_secs: u64,
    /// First central arrival → response spawn (NCL-internal broadcast
    /// plus the §V-C decision).
    pub ncl_secs: u64,
    /// Response spawn → delivery (response forwarding, §V-B "any
    /// forwarding protocol").
    pub response_secs: u64,
}

impl DelayDecomposition {
    /// The total delay (always equals `delivered_at − issued_at`).
    pub fn total_secs(&self) -> u64 {
        self.pull_secs + self.ncl_secs + self.response_secs
    }
}

impl QueryTrace {
    fn new(
        query: QueryId,
        requester: NodeId,
        data: DataId,
        issued_at: Time,
        expires_at: Time,
    ) -> Self {
        QueryTrace {
            query,
            requester,
            data,
            issued_at,
            expires_at,
            first_central_at: None,
            first_central_ncl: None,
            broadcast_fanout: 0,
            first_response_at: None,
            responder: None,
            delivered_at: None,
            hops: Vec::new(),
        }
    }

    /// Whether the query was satisfied in time.
    pub fn delivered(&self) -> bool {
        self.delivered_at.is_some()
    }

    /// The three-phase delay decomposition, `None` while undelivered.
    ///
    /// Milestone timestamps are clamped into `[issued_at,
    /// delivered_at]` (a central arrival or broadcast answer can
    /// legitimately postdate the delivery that satisfied the query —
    /// duplicate in-flight copies keep moving), so the phases sum
    /// exactly to the delay the metrics recorded.
    pub fn decomposition(&self) -> Option<DelayDecomposition> {
        let delivered = self.delivered_at?.0;
        let issued = self.issued_at.0;
        // Without a central milestone (local hit, baseline scheme) the
        // whole pre-response time is pull-phase: fall back to the
        // response spawn, then to the delivery itself.
        let central = self
            .first_central_at
            .or(self.first_response_at)
            .map_or(delivered, |t| t.0.clamp(issued, delivered));
        let response = self
            .first_response_at
            .map_or(delivered, |t| t.0.clamp(central, delivered));
        Some(DelayDecomposition {
            pull_secs: central - issued,
            ncl_secs: response - central,
            response_secs: delivered - response,
        })
    }

    /// Renders the trace as one JSON object
    /// (`{"type":"trace","query":...}`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!(
            "{{\"type\":\"trace\",\"query\":{},\"requester\":{},\"data\":{},\"issued_at\":{},\"expires_at\":{}",
            self.query.0, self.requester.0, self.data.0, self.issued_at.0, self.expires_at.0
        );
        if let Some(t) = self.first_central_at {
            let _ = write!(
                s,
                ",\"first_central_at\":{},\"first_central_ncl\":{}",
                t.0,
                self.first_central_ncl.unwrap_or(0)
            );
        }
        let _ = write!(s, ",\"broadcast_fanout\":{}", self.broadcast_fanout);
        if let Some(t) = self.first_response_at {
            let _ = write!(s, ",\"first_response_at\":{}", t.0);
        }
        if let Some(n) = self.responder {
            let _ = write!(s, ",\"responder\":{}", n.0);
        }
        if let Some(t) = self.delivered_at {
            let _ = write!(s, ",\"delivered_at\":{}", t.0);
        }
        if let Some(d) = self.decomposition() {
            let _ = write!(
                s,
                ",\"pull_secs\":{},\"ncl_secs\":{},\"response_secs\":{}",
                d.pull_secs, d.ncl_secs, d.response_secs
            );
        }
        s.push_str(",\"hops\":[");
        for (i, h) in self.hops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"at\":{},\"phase\":\"{}\",\"from\":{},\"to\":{}}}",
                h.at.0,
                h.phase.name(),
                h.from.0,
                h.to.0
            );
        }
        s.push_str("]}");
        s
    }
}

/// The batteries-included probe: per-kind counters, per-query lifecycle
/// traces, and alloc-free delay/hop/occupancy histograms; optionally
/// retains the raw event stream for JSONL export.
#[derive(Debug)]
pub struct RecordingProbe {
    keep_events: bool,
    events: Vec<ProbeEvent>,
    counters: BTreeMap<&'static str, u64>,
    traces: BTreeMap<u64, QueryTrace>,
    delay_hist: Histogram,
    hop_hist: Histogram,
    occupancy_hist: Histogram,
    oracle_rebuilds: u64,
    oracle_table_hits: u64,
    oracle_table_recomputes: u64,
    parallel: ParallelCounters,
}

/// Accumulated window/batch statistics from `parallel_window` events —
/// the achieved-parallelism evidence the `observe` command reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelCounters {
    /// Contact windows the executor processed.
    pub windows: u64,
    /// Contacts across all windows.
    pub contacts: u64,
    /// Endpoint-disjoint batches across all windows.
    pub batches: u64,
    /// The widest single batch seen.
    pub widest: u64,
    /// Contacts a node collision kept out of their window's first batch.
    pub conflicts: u64,
}

impl ParallelCounters {
    /// Mean contacts per batch — the average exploitable width.
    pub fn mean_batch_width(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.contacts as f64 / self.batches as f64
        }
    }

    /// Share of contacts that conflicted out of their window's first
    /// batch.
    pub fn conflict_rate(&self) -> f64 {
        if self.contacts == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.contacts as f64
        }
    }
}

impl Default for RecordingProbe {
    fn default() -> Self {
        Self::new()
    }
}

impl RecordingProbe {
    /// A recorder with default bucket layouts: delays in 30-minute
    /// buckets over 2 days, hops 0–15, occupancy in 1-MiB buckets.
    pub fn new() -> Self {
        RecordingProbe {
            keep_events: true,
            events: Vec::new(),
            counters: BTreeMap::new(),
            traces: BTreeMap::new(),
            delay_hist: Histogram::new(1800, 96),
            hop_hist: Histogram::new(1, 16),
            occupancy_hist: Histogram::new(1 << 20, 64),
            oracle_rebuilds: 0,
            oracle_table_hits: 0,
            oracle_table_recomputes: 0,
            parallel: ParallelCounters::default(),
        }
    }

    /// Replaces the delay histogram layout (`width` seconds × `n`).
    pub fn with_delay_buckets(mut self, width: u64, n: usize) -> Self {
        self.delay_hist = Histogram::new(width, n);
        self
    }

    /// Replaces the occupancy histogram layout (`width` bytes × `n`).
    pub fn with_occupancy_buckets(mut self, width: u64, n: usize) -> Self {
        self.occupancy_hist = Histogram::new(width, n);
        self
    }

    /// Disables raw-event retention (traces/counters/histograms only) —
    /// for long runs where the full stream would dominate memory.
    pub fn without_event_stream(mut self) -> Self {
        self.keep_events = false;
        self
    }

    /// The retained raw event stream (empty with
    /// [`Self::without_event_stream`]).
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Per-kind event counts (only kinds seen at least once).
    pub fn counters(&self) -> &BTreeMap<&'static str, u64> {
        &self.counters
    }

    /// Count of one kind (0 when never seen).
    pub fn count(&self, kind: &str) -> u64 {
        self.counters.get(kind).copied().unwrap_or(0)
    }

    /// All assembled query traces, in query-id order.
    pub fn traces(&self) -> impl Iterator<Item = &QueryTrace> {
        self.traces.values()
    }

    /// The trace of one query, if it was observed.
    pub fn trace(&self, query: QueryId) -> Option<&QueryTrace> {
        self.traces.get(&query.0)
    }

    /// Delay histogram over satisfied queries (exact mean/sum).
    pub fn delay_hist(&self) -> &Histogram {
        &self.delay_hist
    }

    /// Hops-per-satisfied-query histogram.
    pub fn hop_hist(&self) -> &Histogram {
        &self.hop_hist
    }

    /// Cached-bytes occupancy histogram (one entry per engine sample).
    pub fn occupancy_hist(&self) -> &Histogram {
        &self.occupancy_hist
    }

    /// Latest cumulative oracle counters seen on `oracle_rebuilt`
    /// events: `(rebuilds, table_recomputes, table_hits)`.
    pub fn oracle_counters(&self) -> (u64, u64, u64) {
        (
            self.oracle_rebuilds,
            self.oracle_table_recomputes,
            self.oracle_table_hits,
        )
    }

    /// Accumulated `parallel_window` statistics (all zero on serial
    /// runs, which never emit the event).
    pub fn parallel_counters(&self) -> ParallelCounters {
        self.parallel
    }

    /// Sums the delay decomposition over every delivered query. The
    /// total always equals the metrics' `total_delay_secs`.
    pub fn total_decomposition(&self) -> DelayDecomposition {
        let mut sum = DelayDecomposition::default();
        for t in self.traces.values() {
            if let Some(d) = t.decomposition() {
                sum.pull_secs += d.pull_secs;
                sum.ncl_secs += d.ncl_secs;
                sum.response_secs += d.response_secs;
            }
        }
        sum
    }
}

impl Probe for RecordingProbe {
    fn record(&mut self, event: &ProbeEvent) {
        *self.counters.entry(event.kind()).or_insert(0) += 1;
        match *event {
            ProbeEvent::QueryInjected {
                at,
                query,
                requester,
                data,
                expires_at,
            } => {
                self.traces.insert(
                    query.0,
                    QueryTrace::new(query, requester, data, at, expires_at),
                );
            }
            ProbeEvent::QueryAtCentral { at, query, ncl } => {
                if let Some(t) = self.traces.get_mut(&query.0) {
                    if t.first_central_at.is_none() {
                        t.first_central_at = Some(at);
                        t.first_central_ncl = Some(ncl);
                    }
                }
            }
            ProbeEvent::QueryRelay {
                at,
                query,
                from,
                to,
            } => {
                if let Some(t) = self.traces.get_mut(&query.0) {
                    t.hops.push(HopRecord {
                        at,
                        phase: HopPhase::Pull,
                        from,
                        to,
                    });
                }
            }
            ProbeEvent::BroadcastSpread { query, .. } => {
                if let Some(t) = self.traces.get_mut(&query.0) {
                    t.broadcast_fanout += 1;
                }
            }
            ProbeEvent::ResponseSpawned { at, query, node } => {
                if let Some(t) = self.traces.get_mut(&query.0) {
                    if t.first_response_at.is_none() {
                        t.first_response_at = Some(at);
                        t.responder = Some(node);
                    }
                }
            }
            ProbeEvent::ResponseRelay {
                at,
                query,
                from,
                to,
            } => {
                if let Some(t) = self.traces.get_mut(&query.0) {
                    t.hops.push(HopRecord {
                        at,
                        phase: HopPhase::Response,
                        from,
                        to,
                    });
                }
            }
            ProbeEvent::Delivery {
                at,
                query,
                outcome: DeliveryOutcome::Accepted { delay },
            } => {
                self.delay_hist.record(delay.as_secs());
                if let Some(t) = self.traces.get_mut(&query.0) {
                    if t.delivered_at.is_none() {
                        t.delivered_at = Some(at);
                        self.hop_hist.record(t.hops.len() as u64);
                    }
                }
            }
            ProbeEvent::CacheSampled { bytes, .. } => {
                self.occupancy_hist.record(bytes);
            }
            ProbeEvent::OracleRebuilt {
                epoch,
                table_recomputes,
                table_hits,
                ..
            } => {
                self.oracle_rebuilds = self.oracle_rebuilds.max(epoch);
                self.oracle_table_recomputes = table_recomputes;
                self.oracle_table_hits = table_hits;
            }
            ProbeEvent::ParallelWindow {
                contacts,
                batches,
                widest,
                conflicts,
                ..
            } => {
                self.parallel.windows += 1;
                self.parallel.contacts += contacts;
                self.parallel.batches += batches;
                self.parallel.widest = self.parallel.widest.max(widest);
                self.parallel.conflicts += conflicts;
            }
            _ => {}
        }
        if self.keep_events {
            self.events.push(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::time::Duration;

    fn ev_query(q: u64, at: u64, expires: u64) -> ProbeEvent {
        ProbeEvent::QueryInjected {
            at: Time(at),
            query: QueryId(q),
            requester: NodeId(3),
            data: DataId(7),
            expires_at: Time(expires),
        }
    }

    fn delivered(q: u64, at: u64, delay: u64) -> ProbeEvent {
        ProbeEvent::Delivery {
            at: Time(at),
            query: QueryId(q),
            outcome: DeliveryOutcome::Accepted {
                delay: Duration(delay),
            },
        }
    }

    #[test]
    fn trace_assembles_full_lifecycle() {
        let mut p = RecordingProbe::new();
        p.record(&ev_query(0, 100, 10_000));
        p.record(&ProbeEvent::QueryRelay {
            at: Time(200),
            query: QueryId(0),
            from: NodeId(3),
            to: NodeId(1),
        });
        p.record(&ProbeEvent::QueryAtCentral {
            at: Time(300),
            query: QueryId(0),
            ncl: 2,
        });
        p.record(&ProbeEvent::BroadcastSpread {
            at: Time(350),
            query: QueryId(0),
            node: NodeId(4),
        });
        p.record(&ProbeEvent::ResponseSpawned {
            at: Time(400),
            query: QueryId(0),
            node: NodeId(4),
        });
        p.record(&ProbeEvent::ResponseRelay {
            at: Time(450),
            query: QueryId(0),
            from: NodeId(4),
            to: NodeId(3),
        });
        p.record(&delivered(0, 600, 500));
        let t = p.trace(QueryId(0)).expect("trace assembled");
        assert_eq!(t.first_central_at, Some(Time(300)));
        assert_eq!(t.first_central_ncl, Some(2));
        assert_eq!(t.broadcast_fanout, 1);
        assert_eq!(t.first_response_at, Some(Time(400)));
        assert_eq!(t.responder, Some(NodeId(4)));
        assert_eq!(t.delivered_at, Some(Time(600)));
        assert_eq!(t.hops.len(), 2);
        let d = t.decomposition().expect("delivered");
        assert_eq!(d.pull_secs, 200); // 100 → 300
        assert_eq!(d.ncl_secs, 100); // 300 → 400
        assert_eq!(d.response_secs, 200); // 400 → 600
        assert_eq!(d.total_secs(), 500);
        assert_eq!(p.delay_hist().sum(), 500);
        assert_eq!(p.hop_hist().count(), 1);
        assert_eq!(p.count("query_injected"), 1);
        assert_eq!(p.count("delivery"), 1);
    }

    #[test]
    fn decomposition_clamps_late_milestones() {
        // A duplicate copy reaches a central *after* the local-hit
        // delivery: the pull phase must clamp to the delivery time so
        // the phases still sum to the recorded delay.
        let mut p = RecordingProbe::new();
        p.record(&ev_query(1, 100, 10_000));
        p.record(&delivered(1, 150, 50));
        p.record(&ProbeEvent::QueryAtCentral {
            at: Time(900),
            query: QueryId(1),
            ncl: 0,
        });
        let d = p.trace(QueryId(1)).unwrap().decomposition().unwrap();
        assert_eq!(d.pull_secs, 50);
        assert_eq!(d.ncl_secs, 0);
        assert_eq!(d.response_secs, 0);
        assert_eq!(d.total_secs(), 50);
    }

    #[test]
    fn local_hit_attributes_whole_delay_to_pull() {
        let mut p = RecordingProbe::new();
        p.record(&ev_query(2, 0, 1000));
        p.record(&delivered(2, 0, 0));
        let d = p.trace(QueryId(2)).unwrap().decomposition().unwrap();
        assert_eq!(d, DelayDecomposition::default());
        // Baseline-style delivery with no central milestone at all:
        p.record(&ev_query(3, 100, 9_000));
        p.record(&delivered(3, 800, 700));
        let d = p.trace(QueryId(3)).unwrap().decomposition().unwrap();
        assert_eq!(d.pull_secs, 700);
        assert_eq!(d.ncl_secs + d.response_secs, 0);
    }

    #[test]
    fn duplicate_delivery_does_not_retrace() {
        let mut p = RecordingProbe::new();
        p.record(&ev_query(4, 0, 10_000));
        p.record(&delivered(4, 500, 500));
        p.record(&ProbeEvent::Delivery {
            at: Time(900),
            query: QueryId(4),
            outcome: DeliveryOutcome::Duplicate,
        });
        assert_eq!(p.trace(QueryId(4)).unwrap().delivered_at, Some(Time(500)));
        assert_eq!(p.delay_hist().count(), 1);
        assert_eq!(p.count("delivery"), 2);
    }

    #[test]
    fn total_decomposition_sums_delivered_traces() {
        let mut p = RecordingProbe::new();
        p.record(&ev_query(0, 0, 10_000));
        p.record(&ev_query(1, 0, 10_000));
        p.record(&ev_query(2, 0, 10_000)); // never delivered
        p.record(&delivered(0, 300, 300));
        p.record(&delivered(1, 700, 700));
        let total = p.total_decomposition();
        assert_eq!(total.total_secs(), 1000);
        assert_eq!(total.pull_secs, 1000); // no central milestones
    }

    #[test]
    fn noop_sink_never_builds_the_event() {
        let mut sink = ProbeSink::Noop;
        assert!(!sink.is_enabled());
        sink.emit(|| unreachable!("noop sink must not construct events"));
    }

    #[test]
    fn shared_handle_records_through_rc() {
        let rec = Rc::new(RefCell::new(RecordingProbe::new()));
        let mut sink = ProbeSink::Enabled(Box::new(Rc::clone(&rec)));
        assert!(sink.is_enabled());
        sink.emit(|| ev_query(9, 1, 2));
        drop(sink);
        let rec = Rc::try_unwrap(rec).expect("sole owner").into_inner();
        assert_eq!(rec.count("query_injected"), 1);
        assert!(rec.trace(QueryId(9)).is_some());
    }

    #[test]
    fn json_lines_are_flat_objects() {
        let ev = delivered(5, 600, 500);
        let json = ev.to_json();
        assert!(json.starts_with("{\"type\":\"event\",\"kind\":\"delivery\""));
        assert!(json.contains("\"outcome\":\"accepted\""));
        assert!(json.contains("\"delay_secs\":500"));
        assert!(json.ends_with('}'));

        let mut p = RecordingProbe::new();
        p.record(&ev_query(5, 100, 10_000));
        p.record(&ev);
        let tj = p.trace(QueryId(5)).unwrap().to_json();
        assert!(tj.starts_with("{\"type\":\"trace\",\"query\":5"));
        assert!(tj.contains("\"delivered_at\":600"));
        assert!(tj.contains("\"pull_secs\":500"));
        assert!(tj.contains("\"hops\":[]"));
    }

    #[test]
    fn every_kind_name_is_covered() {
        // KINDS and kind() must stay in sync (the counter table and the
        // JSONL schema both key on these names).
        let sample = ev_query(0, 0, 1);
        assert!(ProbeEvent::KINDS.contains(&sample.kind()));
        let unique: std::collections::HashSet<_> = ProbeEvent::KINDS.iter().collect();
        assert_eq!(unique.len(), ProbeEvent::KINDS.len());
    }

    #[test]
    fn parallel_window_accumulates_and_serializes() {
        let ev = ProbeEvent::ParallelWindow {
            at: Time(50),
            contacts: 10,
            batches: 4,
            widest: 5,
            conflicts: 6,
        };
        assert_eq!(ev.kind(), "parallel_window");
        assert_eq!(ev.at(), Time(50));
        let json = ev.to_json();
        assert!(json.starts_with("{\"type\":\"event\",\"kind\":\"parallel_window\",\"at\":50"));
        assert!(json.contains("\"contacts\":10"));
        assert!(json.contains("\"batches\":4"));
        assert!(json.contains("\"widest\":5"));
        assert!(json.contains("\"conflicts\":6"));

        let mut p = RecordingProbe::new();
        assert_eq!(p.parallel_counters(), ParallelCounters::default());
        p.record(&ev);
        p.record(&ProbeEvent::ParallelWindow {
            at: Time(60),
            contacts: 2,
            batches: 2,
            widest: 1,
            conflicts: 1,
        });
        let c = p.parallel_counters();
        assert_eq!(c.windows, 2);
        assert_eq!(c.contacts, 12);
        assert_eq!(c.batches, 6);
        assert_eq!(c.widest, 5);
        assert_eq!(c.conflicts, 7);
        assert_eq!(c.mean_batch_width(), 2.0);
        assert!((c.conflict_rate() - 7.0 / 12.0).abs() < 1e-12);
    }
}
