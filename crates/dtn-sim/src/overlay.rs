//! Hostile-regime overlays: composable perturbations of a contact
//! source and its workload.
//!
//! The paper evaluates caching under *stationary* contact processes;
//! this module injects the regimes that break that assumption —
//! flash-crowd query storms, coordinated NCL blackouts, network
//! partitions, buffer famine — between well-defined time boundaries.
//! An overlay only *drops or adds* events: it never reorders the
//! contact stream and never draws from any RNG, so scheme randomness
//! and every RNG-derived quantity stay bit-identical to the unperturbed
//! run outside the overlay window (and inside it, modulo the contacts
//! that no longer happen).
//!
//! [`OverlaySource`] stacks any number of [`RegimeOverlay`]s over any
//! [`ContactSource`]; [`RegimeOverlay::workload_events`] produces the
//! deterministic workload half (query storms, filler data) to merge via
//! [`Simulator::add_workload`].
//!
//! [`Simulator::add_workload`]: crate::engine::Simulator::add_workload

use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::{Duration, Time};
use dtn_trace::trace::Contact;

use crate::engine::{ContactSource, WorkloadEvent};
use crate::message::DataItem;

/// The perturbation a [`RegimeOverlay`] applies inside its window.
#[derive(Debug, Clone, PartialEq)]
pub enum OverlayKind {
    /// A query storm on one item: `requests` extra queries for `item`,
    /// spread evenly over the window across a deterministic rotation of
    /// requesters. Contacts are untouched; the regime stresses the
    /// query path and the popularity estimator.
    FlashCrowd {
        /// The item everyone suddenly wants.
        item: DataId,
        /// Number of extra queries injected over the window.
        requests: u32,
        /// Time constraint `T_q` of each injected query.
        constraint: Duration,
    },
    /// A coordinated outage of specific nodes (e.g. the elected NCLs):
    /// every contact touching one of `nodes` inside the window is
    /// dropped — the blacked-out nodes neither receive nor forward.
    NclBlackout {
        /// The nodes taken offline for the window.
        nodes: Vec<NodeId>,
    },
    /// A clean network split: contacts between the low side
    /// (`id < cut`) and the high side (`id >= cut`) are dropped inside
    /// the window; intra-side contacts survive. The heal at the window
    /// end restores cross-partition mixing.
    Partition {
        /// First node id of the high side.
        cut: u32,
    },
    /// Buffer famine: `items` filler data items of `size` bytes are
    /// generated at the window start by a deterministic rotation of
    /// sources, shrinking the cache room every node can offer for real
    /// traffic until the fillers expire at the window end.
    BufferFamine {
        /// Number of filler items injected.
        items: u32,
        /// Size of each filler item in bytes.
        size: u64,
    },
}

impl OverlayKind {
    /// Stable kebab-case name for reports and CLI flags.
    pub fn name(&self) -> &'static str {
        match self {
            OverlayKind::FlashCrowd { .. } => "flash-crowd",
            OverlayKind::NclBlackout { .. } => "ncl-blackout",
            OverlayKind::Partition { .. } => "partition",
            OverlayKind::BufferFamine { .. } => "buffer-famine",
        }
    }
}

/// Deterministic requester/source rotation: co-prime stride over the
/// population so consecutive injected events land on different nodes
/// without any RNG draw.
fn rotate(i: u32, nodes: usize) -> NodeId {
    NodeId((u64::from(i) * 7919 % nodes as u64) as u32)
}

/// One hostile regime active between two instants.
///
/// # Example
///
/// ```
/// use dtn_core::ids::NodeId;
/// use dtn_core::time::Time;
/// use dtn_sim::overlay::{OverlayKind, RegimeOverlay};
/// use dtn_trace::trace::Contact;
///
/// let blackout = RegimeOverlay::new(
///     Time(1000),
///     Time(2000),
///     OverlayKind::NclBlackout { nodes: vec![NodeId(3)] },
/// );
/// let hit = Contact::new(NodeId(3), NodeId(5), Time(1500), Time(1560));
/// let spared = Contact::new(NodeId(4), NodeId(5), Time(1500), Time(1560));
/// assert!(blackout.drops(&hit));
/// assert!(!blackout.drops(&spared));
/// // Outside the window the blacked-out node is fine.
/// let after = Contact::new(NodeId(3), NodeId(5), Time(2000), Time(2060));
/// assert!(!blackout.drops(&after));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeOverlay {
    /// Start of the hostile window (inclusive).
    pub start: Time,
    /// End of the hostile window (exclusive) — the heal instant.
    pub end: Time,
    /// What the regime does inside the window.
    pub kind: OverlayKind,
}

impl RegimeOverlay {
    /// Creates an overlay active on `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty or the kind is degenerate (no
    /// blackout nodes, zero flash-crowd requests, zero famine items).
    pub fn new(start: Time, end: Time, kind: OverlayKind) -> Self {
        assert!(end > start, "overlay window must be non-empty");
        match &kind {
            OverlayKind::FlashCrowd { requests, .. } => {
                assert!(*requests > 0, "flash crowd needs at least one request");
            }
            OverlayKind::NclBlackout { nodes } => {
                assert!(!nodes.is_empty(), "blackout needs at least one node");
            }
            OverlayKind::Partition { .. } => {}
            OverlayKind::BufferFamine { items, size } => {
                assert!(
                    *items > 0 && *size > 0,
                    "famine needs items of nonzero size"
                );
            }
        }
        RegimeOverlay { start, end, kind }
    }

    /// Whether the overlay window covers `at` (start inclusive, end
    /// exclusive: the heal instant itself is already healthy).
    pub fn active_at(&self, at: Time) -> bool {
        self.start <= at && at < self.end
    }

    /// Whether this overlay suppresses `contact`. Classification keys
    /// on the contact's *start*: a contact beginning inside the window
    /// is hostile territory even if it would outlive the heal.
    pub fn drops(&self, contact: &Contact) -> bool {
        if !self.active_at(contact.start) {
            return false;
        }
        match &self.kind {
            OverlayKind::FlashCrowd { .. } | OverlayKind::BufferFamine { .. } => false,
            OverlayKind::NclBlackout { nodes } => {
                nodes.contains(&contact.a) || nodes.contains(&contact.b)
            }
            OverlayKind::Partition { cut } => (contact.a.0 < *cut) != (contact.b.0 < *cut),
        }
    }

    /// The workload half of the regime, fully deterministic (no RNG):
    /// flash-crowd queries spread evenly over the window, famine filler
    /// items generated at the window start with lifetimes ending at the
    /// heal. Contact-only overlays return no events.
    ///
    /// `nodes` is the population size; `first_spare_item` must be a
    /// [`DataId`] range start unused by the real workload so famine
    /// fillers never collide with genuine items.
    pub fn workload_events(&self, nodes: usize, first_spare_item: u64) -> Vec<WorkloadEvent> {
        assert!(nodes > 0, "population must be non-empty");
        match &self.kind {
            OverlayKind::NclBlackout { .. } | OverlayKind::Partition { .. } => Vec::new(),
            OverlayKind::FlashCrowd {
                item,
                requests,
                constraint,
            } => {
                let span = self.end.as_secs() - self.start.as_secs();
                (0..*requests)
                    .map(|i| WorkloadEvent::IssueQuery {
                        at: Time(self.start.as_secs() + span * u64::from(i) / u64::from(*requests)),
                        requester: rotate(i, nodes),
                        data: *item,
                        constraint: *constraint,
                    })
                    .collect()
            }
            OverlayKind::BufferFamine { items, size } => {
                let lifetime = self.end.saturating_since(self.start);
                (0..*items)
                    .map(|i| WorkloadEvent::GenerateData {
                        item: DataItem::new(
                            DataId(first_spare_item + u64::from(i)),
                            rotate(i, nodes),
                            *size,
                            self.start,
                            lifetime,
                        ),
                    })
                    .collect()
            }
        }
    }
}

/// A [`ContactSource`] filtering another source through a stack of
/// [`RegimeOverlay`]s.
///
/// Overlays are drop-only, so the inner source's time order is
/// preserved by construction — the trace-monotonicity audit law holds
/// over the composed stream whenever it holds over the inner one.
#[derive(Debug)]
pub struct OverlaySource<C> {
    inner: C,
    overlays: Vec<RegimeOverlay>,
    dropped: u64,
}

impl<C: ContactSource> OverlaySource<C> {
    /// Stacks `overlays` over `inner`. An empty stack is a transparent
    /// pass-through.
    pub fn new(inner: C, overlays: Vec<RegimeOverlay>) -> Self {
        OverlaySource {
            inner,
            overlays,
            dropped: 0,
        }
    }

    /// Contacts suppressed by the stack so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The overlay stack.
    pub fn overlays(&self) -> &[RegimeOverlay] {
        &self.overlays
    }
}

impl<C: ContactSource> ContactSource for OverlaySource<C> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn end_time(&self) -> Time {
        self.inner.end_time()
    }

    fn known_end(&self) -> Option<Time> {
        self.inner.known_end()
    }

    fn peek(&mut self) -> Option<Contact> {
        loop {
            let contact = self.inner.peek()?;
            if self.overlays.iter().any(|o| o.drops(&contact)) {
                self.inner.advance();
                self.dropped += 1;
            } else {
                return Some(contact);
            }
        }
    }

    fn advance(&mut self) {
        self.inner.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::StreamSource;

    fn contact(a: u32, b: u32, start: u64) -> Contact {
        Contact::new(NodeId(a), NodeId(b), Time(start), Time(start + 60))
    }

    fn source(contacts: Vec<Contact>) -> StreamSource<std::vec::IntoIter<Contact>> {
        StreamSource::new(contacts.into_iter(), 10, Duration(10_000))
    }

    fn drain<C: ContactSource>(src: &mut C) -> Vec<Contact> {
        let mut out = Vec::new();
        while let Some(c) = src.peek() {
            out.push(c);
            src.advance();
        }
        out
    }

    #[test]
    fn blackout_drops_exactly_the_window_contacts_of_its_nodes() {
        let contacts = vec![
            contact(3, 4, 500),  // before the window: kept
            contact(3, 4, 1200), // node 3 inside: dropped
            contact(5, 6, 1300), // untouched nodes inside: kept
            contact(2, 3, 1900), // node 3 inside: dropped
            contact(3, 4, 2000), // heal instant: kept
        ];
        let overlay = RegimeOverlay::new(
            Time(1000),
            Time(2000),
            OverlayKind::NclBlackout {
                nodes: vec![NodeId(3)],
            },
        );
        let mut src = OverlaySource::new(source(contacts), vec![overlay]);
        let kept = drain(&mut src);
        assert_eq!(
            kept.iter().map(|c| c.start.as_secs()).collect::<Vec<_>>(),
            vec![500, 1300, 2000]
        );
        assert_eq!(src.dropped(), 2);
    }

    #[test]
    fn partition_drops_only_cross_cut_contacts() {
        let contacts = vec![
            contact(1, 2, 1100), // low side: kept
            contact(7, 8, 1200), // high side: kept
            contact(2, 7, 1300), // cross: dropped
            contact(4, 5, 1400), // straddles the cut boundary: dropped
        ];
        let overlay = RegimeOverlay::new(Time(1000), Time(2000), OverlayKind::Partition { cut: 5 });
        let mut src = OverlaySource::new(source(contacts), vec![overlay]);
        let kept = drain(&mut src);
        assert_eq!(kept.len(), 2);
        assert_eq!(src.dropped(), 2);
    }

    #[test]
    fn workload_overlays_leave_contacts_alone() {
        let contacts = vec![contact(1, 2, 1100), contact(3, 4, 1500)];
        let flash = RegimeOverlay::new(
            Time(1000),
            Time(2000),
            OverlayKind::FlashCrowd {
                item: DataId(9),
                requests: 4,
                constraint: Duration::hours(1),
            },
        );
        let famine = RegimeOverlay::new(
            Time(1000),
            Time(2000),
            OverlayKind::BufferFamine {
                items: 3,
                size: 1_000_000,
            },
        );
        let mut src = OverlaySource::new(source(contacts.clone()), vec![flash, famine]);
        assert_eq!(drain(&mut src), contacts);
        assert_eq!(src.dropped(), 0);
    }

    #[test]
    fn flash_crowd_workload_is_deterministic_and_windowed() {
        let overlay = RegimeOverlay::new(
            Time(1000),
            Time(2000),
            OverlayKind::FlashCrowd {
                item: DataId(9),
                requests: 5,
                constraint: Duration::hours(1),
            },
        );
        let events = overlay.workload_events(10, 100);
        assert_eq!(events, overlay.workload_events(10, 100), "deterministic");
        assert_eq!(events.len(), 5);
        let mut requesters = std::collections::HashSet::new();
        for e in &events {
            let WorkloadEvent::IssueQuery {
                at,
                requester,
                data,
                ..
            } = e
            else {
                panic!("flash crowd only issues queries");
            };
            assert!(overlay.active_at(*at), "query at {at:?} outside window");
            assert_eq!(*data, DataId(9));
            requesters.insert(*requester);
        }
        assert!(requesters.len() > 1, "storm must come from several nodes");
    }

    #[test]
    fn famine_fillers_use_spare_ids_and_expire_at_the_heal() {
        let overlay = RegimeOverlay::new(
            Time(1000),
            Time(4000),
            OverlayKind::BufferFamine {
                items: 3,
                size: 500,
            },
        );
        let events = overlay.workload_events(10, 777);
        assert_eq!(events.len(), 3);
        for (i, e) in events.iter().enumerate() {
            let WorkloadEvent::GenerateData { item } = e else {
                panic!("famine only generates data");
            };
            assert_eq!(item.id, DataId(777 + i as u64));
            assert_eq!(item.created_at, Time(1000));
            assert_eq!(item.size, 500);
            assert_eq!(item.expires_at(), Time(4000), "fillers die at the heal");
        }
        // Contact-only overlays inject nothing.
        let blackout = RegimeOverlay::new(
            Time(0),
            Time(10),
            OverlayKind::NclBlackout {
                nodes: vec![NodeId(0)],
            },
        );
        assert!(blackout.workload_events(10, 0).is_empty());
    }

    #[test]
    fn stacked_overlays_compose_and_preserve_order() {
        let contacts = vec![
            contact(1, 2, 100),
            contact(1, 7, 1100), // cross-partition: dropped
            contact(2, 3, 1200), // blackout node 3: dropped
            contact(1, 2, 1300), // survives both
            contact(6, 7, 1400), // high side intra: survives
        ];
        let overlays = vec![
            RegimeOverlay::new(Time(1000), Time(2000), OverlayKind::Partition { cut: 5 }),
            RegimeOverlay::new(
                Time(1000),
                Time(2000),
                OverlayKind::NclBlackout {
                    nodes: vec![NodeId(3)],
                },
            ),
        ];
        let mut src = OverlaySource::new(source(contacts), overlays);
        let kept = drain(&mut src);
        assert_eq!(
            kept.iter().map(|c| c.start.as_secs()).collect::<Vec<_>>(),
            vec![100, 1300, 1400]
        );
        assert!(kept.windows(2).all(|w| w[0].start <= w[1].start));
        assert_eq!(src.dropped(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be non-empty")]
    fn empty_window_panics() {
        let _ = RegimeOverlay::new(Time(100), Time(100), OverlayKind::Partition { cut: 1 });
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_blackout_panics() {
        let _ = RegimeOverlay::new(
            Time(0),
            Time(100),
            OverlayKind::NclBlackout { nodes: vec![] },
        );
    }

    #[test]
    fn overlay_names_are_stable() {
        assert_eq!(
            OverlayKind::FlashCrowd {
                item: DataId(0),
                requests: 1,
                constraint: Duration(1)
            }
            .name(),
            "flash-crowd"
        );
        assert_eq!(
            OverlayKind::NclBlackout {
                nodes: vec![NodeId(0)]
            }
            .name(),
            "ncl-blackout"
        );
        assert_eq!(OverlayKind::Partition { cut: 1 }.name(), "partition");
        assert_eq!(
            OverlayKind::BufferFamine { items: 1, size: 1 }.name(),
            "buffer-famine"
        );
    }
}
