//! Debug-gated invariant audit: machine-checkable conservation laws.
//!
//! The paper's evaluation rests on conservation properties the
//! simulation must uphold at every instant: every cached copy is
//! carried, settled, or dropped — never duplicated or leaked — every
//! query ends exactly one of satisfied / expired / pending, and a
//! contact never transmits more than its link budget. This module makes
//! those properties *checkable*: [`AuditLaw`] names each law,
//! [`AuditViolation`] is a structured report of one breach, and
//! [`AuditReport`] accumulates them across a run.
//!
//! Audits run after every contact and every epoch when
//! [`SimConfig::audit`] is on. The engine checks its own bookkeeping
//! (query/delivery conservation) and then calls [`Scheme::audit`], which
//! re-derives the scheme's canonical state and reports any drift. With
//! the flag off (the default) the engine carries a single `None` option
//! and the per-event cost is one predicted branch — the timed benches
//! run audit-free.
//!
//! [`SimConfig::audit`]: crate::engine::SimConfig::audit
//! [`Scheme::audit`]: crate::engine::Scheme::audit

use std::fmt;

use dtn_core::ids::{DataId, NodeId};
use dtn_core::time::Time;
use dtn_trace::trace::Contact;

use crate::buffer::Buffer;
use crate::metrics::Metrics;
use crate::probe::RecordingProbe;

/// A conservation law the simulation must uphold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AuditLaw {
    /// Every live cached copy is carried, settled, or dropped — its
    /// holder physically stores the bytes, and per-NCL member counts
    /// match the per-copy states.
    CopyConservation,
    /// A buffer's used-byte counter equals the sum of its stored item
    /// sizes and never exceeds its capacity.
    BufferAccounting,
    /// Within a contact, `bytes_used = budget − remaining` never
    /// underflows: a scheme may only *consume* link budget.
    LinkBudget,
    /// `queries_issued == satisfied + expired + in_flight`, and the sum
    /// of recorded delays equals `Metrics::total_delay_secs`.
    QueryConservation,
    /// Every reported delivery is classified exactly once: satisfied,
    /// duplicate, late, or unknown.
    DeliveryAccounting,
    /// The probe's per-query delay decomposition sums to the metrics'
    /// `total_delay_secs` (probe/metric cross-check).
    DelayDecomposition,
    /// Side indexes (pull/broadcast/response locators) agree with the
    /// slabs they index.
    IndexConsistency,
    /// The contact stream feeding the engine is well-formed: starts are
    /// nondecreasing, durations positive, endpoints distinct and in
    /// range. Regime overlays may *drop or reshape* contacts but must
    /// never emit an out-of-order or negative-duration one; this law
    /// catches a corrupting [`ContactSource`] before its contacts
    /// poison the rate table and every downstream metric.
    ///
    /// [`ContactSource`]: crate::engine::ContactSource
    TraceMonotonicity,
}

impl AuditLaw {
    /// Stable kebab-case name for reports and log lines.
    pub fn name(self) -> &'static str {
        match self {
            AuditLaw::CopyConservation => "copy-conservation",
            AuditLaw::BufferAccounting => "buffer-accounting",
            AuditLaw::LinkBudget => "link-budget",
            AuditLaw::QueryConservation => "query-conservation",
            AuditLaw::DeliveryAccounting => "delivery-accounting",
            AuditLaw::DelayDecomposition => "delay-decomposition",
            AuditLaw::IndexConsistency => "index-consistency",
            AuditLaw::TraceMonotonicity => "trace-monotonicity",
        }
    }
}

impl fmt::Display for AuditLaw {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One observed breach of a conservation law.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The law that was broken.
    pub law: AuditLaw,
    /// Simulation time of the audit sweep that caught it.
    pub at: Time,
    /// The node involved, when the law localises to one.
    pub node: Option<NodeId>,
    /// The data item involved, when the law localises to one.
    pub item: Option<DataId>,
    /// Human-readable specifics (expected vs. actual).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] at {}", self.law, self.at)?;
        if let Some(node) = self.node {
            write!(f, " node {node}")?;
        }
        if let Some(item) = self.item {
            write!(f, " item {item}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Violations stored verbatim before the report switches to counting
/// only — a broken invariant usually cascades, and the first few
/// violations are the diagnostic ones.
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// Accumulated audit results for one simulation run.
#[derive(Debug, Default)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
    violations_total: u64,
    sweeps: u64,
}

impl AuditReport {
    /// Whether no law was ever violated.
    pub fn is_clean(&self) -> bool {
        self.violations_total == 0
    }

    /// The stored violations (capped at [`MAX_STORED_VIOLATIONS`]; see
    /// [`violations_total`](Self::violations_total) for the full count).
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Total violations observed, including ones beyond the storage cap.
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }

    /// Number of audit sweeps run (one per contact/epoch when enabled).
    pub fn sweeps(&self) -> u64 {
        self.sweeps
    }

    /// Counts one audit sweep.
    pub fn begin_sweep(&mut self) {
        self.sweeps += 1;
    }

    /// Records a violation.
    pub fn violate(&mut self, violation: AuditViolation) {
        self.violations_total += 1;
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(violation);
        }
    }

    /// One-line summary: sweep count plus violation count, with the
    /// first violation inlined when there is one.
    pub fn summary(&self) -> String {
        match self.violations.first() {
            None => format!("audit clean: {} sweeps, 0 violations", self.sweeps),
            Some(first) => format!(
                "audit FAILED: {} violations over {} sweeps; first: {first}",
                self.violations_total, self.sweeps
            ),
        }
    }
}

/// Engine-side audit bookkeeping, carried behind
/// [`SimConfig::audit`](crate::engine::SimConfig::audit).
#[derive(Debug, Default)]
pub struct AuditState {
    /// The accumulated report.
    pub report: AuditReport,
    /// Deliveries reported through `SimCtx::mark_delivered`.
    pub deliveries_reported: u64,
    /// Deliveries naming a query id that was never issued.
    pub unknown_deliveries: u64,
    /// High-water mark of dispatched contact starts, for
    /// [`AuditLaw::TraceMonotonicity`].
    pub last_contact_start: Time,
}

/// Checks [`AuditLaw::TraceMonotonicity`] on one contact about to be
/// dispatched: positive duration, distinct in-range endpoints, and a
/// start no earlier than any previously dispatched contact. Returns
/// `true` when the contact is well-formed (and advances the high-water
/// mark in `state`); `false` means the engine must quarantine the
/// contact — replaying a malformed contact would corrupt the rate
/// table and every metric downstream, turning one structured violation
/// into an avalanche of secondary ones.
///
/// `Contact::new` upholds all the shape laws by panicking, and
/// [`StreamSource`] asserts ordering — this audit exists for *other*
/// [`ContactSource`] implementations (overlay stacks, trace importers,
/// fuzzers) that build contacts from raw fields.
///
/// [`StreamSource`]: crate::engine::StreamSource
/// [`ContactSource`]: crate::engine::ContactSource
pub fn check_contact_well_formed(contact: &Contact, nodes: usize, state: &mut AuditState) -> bool {
    let at = contact.start;
    let mut flag = |detail: String, node: Option<NodeId>| {
        state.report.violate(AuditViolation {
            law: AuditLaw::TraceMonotonicity,
            at,
            node,
            item: None,
            detail,
        });
    };
    let mut ok = true;
    if contact.end <= contact.start {
        flag(
            format!(
                "non-positive contact duration: start {:?} end {:?}",
                contact.start, contact.end
            ),
            Some(contact.a),
        );
        ok = false;
    }
    if contact.a == contact.b {
        flag(
            format!("self-contact ({}, {})", contact.a, contact.b),
            Some(contact.a),
        );
        ok = false;
    }
    if contact.a.index() >= nodes || contact.b.index() >= nodes {
        flag(
            format!(
                "contact ({}, {}) outside the {nodes}-node population",
                contact.a, contact.b
            ),
            Some(contact.a.max(contact.b)),
        );
        ok = false;
    }
    if contact.start < state.last_contact_start {
        flag(
            format!(
                "out-of-order contact: start {:?} after high-water mark {:?}",
                contact.start, state.last_contact_start
            ),
            Some(contact.a),
        );
        ok = false;
    }
    if ok {
        state.last_contact_start = contact.start;
    }
    ok
}

/// Checks [`AuditLaw::BufferAccounting`] over a slice of per-node
/// buffers: the used-byte counter must equal the recomputed sum of
/// stored item sizes and stay within capacity. Shared by every scheme's
/// [`Scheme::audit`](crate::engine::Scheme::audit) implementation.
pub fn check_buffers(buffers: &[Buffer], at: Time, report: &mut AuditReport) {
    for (n, buf) in buffers.iter().enumerate() {
        let node = NodeId(n as u32);
        let actual: u64 = buf.iter().map(|d| d.size).sum();
        if buf.used() != actual {
            report.violate(AuditViolation {
                law: AuditLaw::BufferAccounting,
                at,
                node: Some(node),
                item: None,
                detail: format!("used counter {} != stored bytes {actual}", buf.used()),
            });
        }
        if buf.used() > buf.capacity() {
            report.violate(AuditViolation {
                law: AuditLaw::BufferAccounting,
                at,
                node: Some(node),
                item: None,
                detail: format!("used {} exceeds capacity {}", buf.used(), buf.capacity()),
            });
        }
    }
}

/// Checks [`AuditLaw::DelayDecomposition`]: the probe's summed
/// three-phase decomposition must equal the metrics' total delay, and
/// the probe must have a delivered trace per satisfied query. Run at
/// end of run by harnesses that install a [`RecordingProbe`] (the
/// engine cannot see through its type-erased probe sink).
pub fn check_delay_decomposition(
    probe: &RecordingProbe,
    metrics: &Metrics,
    at: Time,
    report: &mut AuditReport,
) {
    let decomposed = probe.total_decomposition().total_secs();
    if decomposed != metrics.total_delay_secs {
        report.violate(AuditViolation {
            law: AuditLaw::DelayDecomposition,
            at,
            node: None,
            item: None,
            detail: format!(
                "probe decomposition sums to {decomposed}s, metrics recorded {}s",
                metrics.total_delay_secs
            ),
        });
    }
    let delivered = probe.traces().filter(|t| t.delivered()).count() as u64;
    if delivered != metrics.queries_satisfied {
        report.violate(AuditViolation {
            law: AuditLaw::DelayDecomposition,
            at,
            node: None,
            item: None,
            detail: format!(
                "probe saw {delivered} delivered traces, metrics satisfied {}",
                metrics.queries_satisfied
            ),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::DeliveryOutcome;
    use crate::probe::{Probe, ProbeEvent};
    use dtn_core::ids::QueryId;
    use dtn_core::time::Duration;

    fn violation(at: u64, detail: &str) -> AuditViolation {
        AuditViolation {
            law: AuditLaw::CopyConservation,
            at: Time(at),
            node: Some(NodeId(3)),
            item: Some(DataId(7)),
            detail: detail.to_owned(),
        }
    }

    #[test]
    fn report_counts_past_the_storage_cap() {
        let mut report = AuditReport::default();
        assert!(report.is_clean());
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 10) {
            report.violate(violation(i, "drift"));
        }
        assert!(!report.is_clean());
        assert_eq!(report.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(report.violations_total(), MAX_STORED_VIOLATIONS as u64 + 10);
        assert!(report.summary().contains("FAILED"));
    }

    #[test]
    fn violation_display_names_law_node_and_item() {
        let v = violation(42, "expected 1, got 2");
        let s = v.to_string();
        assert!(s.contains("copy-conservation"), "{s}");
        assert!(s.contains("t+42s"), "{s}");
        assert!(s.contains("node n3"), "{s}");
        assert!(s.contains("item d7"), "{s}");
        assert!(s.contains("expected 1, got 2"), "{s}");
    }

    #[test]
    fn law_names_are_distinct() {
        let laws = [
            AuditLaw::CopyConservation,
            AuditLaw::BufferAccounting,
            AuditLaw::LinkBudget,
            AuditLaw::QueryConservation,
            AuditLaw::DeliveryAccounting,
            AuditLaw::DelayDecomposition,
            AuditLaw::IndexConsistency,
            AuditLaw::TraceMonotonicity,
        ];
        let names: std::collections::HashSet<_> = laws.iter().map(|l| l.name()).collect();
        assert_eq!(names.len(), laws.len());
    }

    #[test]
    fn contact_shape_checker_accepts_ordered_well_formed_contacts() {
        let mut state = AuditState::default();
        let a = Contact {
            a: NodeId(0),
            b: NodeId(1),
            start: Time(100),
            end: Time(160),
        };
        let b = Contact {
            a: NodeId(2),
            b: NodeId(3),
            start: Time(100),
            end: Time(220),
        };
        assert!(check_contact_well_formed(&a, 4, &mut state));
        assert!(
            check_contact_well_formed(&b, 4, &mut state),
            "ties are in order"
        );
        assert!(state.report.is_clean());
        assert_eq!(state.last_contact_start, Time(100));
    }

    #[test]
    fn contact_shape_checker_flags_each_malformation() {
        let mut state = AuditState::default();
        let good = Contact {
            a: NodeId(0),
            b: NodeId(1),
            start: Time(500),
            end: Time(560),
        };
        assert!(check_contact_well_formed(&good, 4, &mut state));

        // Negative duration.
        let negative = Contact {
            start: Time(600),
            end: Time(600),
            ..good
        };
        assert!(!check_contact_well_formed(&negative, 4, &mut state));
        // Self-contact.
        let selfc = Contact {
            b: NodeId(0),
            start: Time(700),
            end: Time(760),
            ..good
        };
        assert!(!check_contact_well_formed(&selfc, 4, &mut state));
        // Out of range.
        let oob = Contact {
            b: NodeId(9),
            start: Time(800),
            end: Time(860),
            ..good
        };
        assert!(!check_contact_well_formed(&oob, 4, &mut state));
        // Time travel: before the Time(500) high-water mark.
        let stale = Contact {
            start: Time(400),
            end: Time(460),
            ..good
        };
        assert!(!check_contact_well_formed(&stale, 4, &mut state));

        assert_eq!(state.report.violations_total(), 4);
        assert!(state
            .report
            .violations()
            .iter()
            .all(|v| v.law == AuditLaw::TraceMonotonicity));
        // Rejected contacts never advance the high-water mark.
        assert_eq!(state.last_contact_start, Time(500));
    }

    #[test]
    fn consistent_buffers_pass() {
        use crate::message::DataItem;
        let mut buf = Buffer::new(100);
        buf.insert(DataItem::new(
            DataId(1),
            NodeId(0),
            60,
            Time(0),
            Duration(100),
        ))
        .expect("fits");
        let mut report = AuditReport::default();
        check_buffers(&[buf, Buffer::new(10)], Time(5), &mut report);
        assert!(report.is_clean(), "{}", report.summary());
    }

    #[test]
    fn delay_decomposition_cross_check() {
        let mut probe = RecordingProbe::new();
        probe.record(&ProbeEvent::QueryInjected {
            at: Time(100),
            query: QueryId(0),
            requester: NodeId(1),
            data: DataId(1),
            expires_at: Time(9_000),
        });
        probe.record(&ProbeEvent::Delivery {
            at: Time(900),
            query: QueryId(0),
            outcome: DeliveryOutcome::Accepted {
                delay: Duration(800),
            },
        });
        let metrics = Metrics {
            queries_issued: 1,
            queries_satisfied: 1,
            total_delay_secs: 800,
            ..Metrics::default()
        };
        let mut report = AuditReport::default();
        check_delay_decomposition(&probe, &metrics, Time(900), &mut report);
        assert!(report.is_clean(), "{}", report.summary());

        // A metrics total the probe cannot account for is a violation.
        let skewed = Metrics {
            total_delay_secs: 801,
            ..metrics
        };
        let mut report = AuditReport::default();
        check_delay_decomposition(&probe, &skewed, Time(900), &mut report);
        assert_eq!(report.violations_total(), 1);
        assert_eq!(report.violations()[0].law, AuditLaw::DelayDecomposition);
    }
}
