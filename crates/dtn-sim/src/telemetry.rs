//! Windowed time-series telemetry ("flight recorder").
//!
//! [`Telemetry`] is a [`Probe`] that folds the event stream into
//! fixed-width simulation-time windows of counters and gauges instead
//! of retaining raw events: deliveries and their delay sum, per-NCL
//! query load and hit credit, transmission byte counts, oracle
//! recompute/reuse deltas, parallel batch shape, cache occupancy. A
//! ten-day city run that would retain millions of events folds into a
//! few hundred windows of fixed-size counters.
//!
//! Commit order is trace order even under the windowed parallel
//! executor, so simulation time only moves forward through the probe —
//! the fold is a flat window array indexed by `(at − origin) / width`,
//! preallocated from the horizon hint and touched append-only.
//! Recording is alloc-free after setup except for two amortised
//! growths: the per-query first-NCL table (grown on `query_injected`)
//! and the window array itself if the run overruns the hint (tracked in
//! [`Telemetry::overran_hint`]).
//!
//! The JSONL export is versioned ([`Telemetry::SCHEMA`]) so the
//! `experiments compare` run-diff harness can align captures from
//! different builds; [`Telemetry::totals`] sums every window so
//! conservation against [`Metrics`](crate::metrics::Metrics) totals is
//! a strict equality check, not an approximation.

use dtn_core::time::{Duration, Time};

use crate::engine::DeliveryOutcome;
use crate::probe::{Probe, ProbeEvent};

/// No first-central record yet for this query.
const NCL_NONE: u16 = u16::MAX;
/// First-central slot was at or beyond `ncl_slots` (counted as overflow).
const NCL_OVERFLOW: u16 = u16::MAX - 1;

/// Layout of a [`Telemetry`] recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Window width in simulation time.
    pub window: Duration,
    /// Simulation time of window 0's left edge. Events before the
    /// origin (there should be none — install telemetry at or before
    /// the measurement start) clamp into window 0.
    pub origin: Time,
    /// Expected span of the recording, used to preallocate the window
    /// array. Overrunning it still works (the array grows) but is
    /// reported via [`Telemetry::overran_hint`].
    pub horizon: Duration,
    /// Per-NCL slot count for the load/hit columns; slots at or beyond
    /// this land in the per-window overflow counter.
    pub ncl_slots: usize,
}

impl TelemetryConfig {
    /// A layout dividing `[origin, origin + horizon]` into `windows`
    /// equal windows (rounded up to whole seconds).
    pub fn spanning(origin: Time, horizon: Duration, windows: u64, ncl_slots: usize) -> Self {
        TelemetryConfig {
            window: Duration(horizon.0.div_ceil(windows.max(1)).max(1)),
            origin,
            horizon,
            ncl_slots,
        }
    }
}

/// Why a [`TelemetryConfig`] cannot drive a recorder.
///
/// `Duration` is unsigned, so a *negative* width is unrepresentable by
/// construction; zero is the one degenerate layout left to reject —
/// every event would divide into the same (infinite-rate) window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryError {
    /// The window width was zero.
    ZeroWindowWidth,
}

impl std::fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TelemetryError::ZeroWindowWidth => {
                write!(f, "telemetry window width must be positive (got 0)")
            }
        }
    }
}

impl std::error::Error for TelemetryError {}

/// Counters and gauges folded from one simulation-time window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowStats {
    /// Contacts dispatched (`contact_begin`).
    pub contacts: u64,
    /// Contacts dropped by fault injection.
    pub contacts_lost: u64,
    /// Workload data items injected.
    pub data_injected: u64,
    /// Workload queries issued.
    pub queries_issued: u64,
    /// In-time deliveries (each satisfies a distinct query).
    pub deliveries: u64,
    /// Duplicate deliveries (query already satisfied).
    pub duplicate_deliveries: u64,
    /// Deliveries past the query's time constraint.
    pub late_deliveries: u64,
    /// Deliveries for queries the engine does not know.
    pub unknown_deliveries: u64,
    /// Sum of in-time delivery delays (seconds).
    pub delay_sum_secs: u64,
    /// Bytes accepted onto contacts (`transmit_accepted`).
    pub bytes_transmitted: u64,
    /// Transmissions rejected for exceeding the contact budget.
    pub transfers_rejected: u64,
    /// Cache-replacement evictions.
    pub replacements: u64,
    /// Maintenance epochs fired.
    pub epochs: u64,
    /// Central-node re-elections applied.
    pub reelections: u64,
    /// Oracle snapshot invalidations.
    pub oracle_invalidations: u64,
    /// Oracle snapshot rebuilds.
    pub oracle_rebuilds: u64,
    /// Path-table recomputes this window (delta of the cumulative
    /// counter carried by `oracle_rebuilt` events).
    pub oracle_recomputes: u64,
    /// Path-table hits this window (delta, as above).
    pub oracle_hits: u64,
    /// Contact windows the parallel executor processed.
    pub parallel_windows: u64,
    /// Contacts across those windows.
    pub parallel_contacts: u64,
    /// Endpoint-disjoint batches across those windows.
    pub parallel_batches: u64,
    /// Widest single batch seen this window.
    pub parallel_widest: u64,
    /// Contacts conflicted out of their window's first batch.
    pub parallel_conflicts: u64,
    /// Cached copies at the last occupancy sample in this window
    /// (gauge; valid only when `sampled`).
    pub cache_copies: u64,
    /// Cached bytes at that sample (gauge).
    pub cache_bytes: u64,
    /// Whether an occupancy sample landed in this window.
    pub sampled: bool,
    /// Per-NCL-slot query arrivals at central nodes.
    pub ncl_load: Box<[u64]>,
    /// Per-NCL-slot delivered-query credit: a delivery increments the
    /// slot where its query *first* reached a central node.
    pub ncl_hits: Box<[u64]>,
    /// Central arrivals (load side) whose slot was out of range.
    pub ncl_overflow: u64,
}

impl WindowStats {
    fn empty(ncl_slots: usize) -> Self {
        WindowStats {
            contacts: 0,
            contacts_lost: 0,
            data_injected: 0,
            queries_issued: 0,
            deliveries: 0,
            duplicate_deliveries: 0,
            late_deliveries: 0,
            unknown_deliveries: 0,
            delay_sum_secs: 0,
            bytes_transmitted: 0,
            transfers_rejected: 0,
            replacements: 0,
            epochs: 0,
            reelections: 0,
            oracle_invalidations: 0,
            oracle_rebuilds: 0,
            oracle_recomputes: 0,
            oracle_hits: 0,
            parallel_windows: 0,
            parallel_contacts: 0,
            parallel_batches: 0,
            parallel_widest: 0,
            parallel_conflicts: 0,
            cache_copies: 0,
            cache_bytes: 0,
            sampled: false,
            ncl_load: vec![0; ncl_slots].into_boxed_slice(),
            ncl_hits: vec![0; ncl_slots].into_boxed_slice(),
            ncl_overflow: 0,
        }
    }

    /// Whether nothing at all was recorded in this window.
    pub fn is_empty(&self) -> bool {
        self.contacts == 0
            && self.contacts_lost == 0
            && self.data_injected == 0
            && self.queries_issued == 0
            && self.deliveries == 0
            && self.duplicate_deliveries == 0
            && self.late_deliveries == 0
            && self.unknown_deliveries == 0
            && self.bytes_transmitted == 0
            && self.transfers_rejected == 0
            && self.replacements == 0
            && self.epochs == 0
            && self.reelections == 0
            && self.oracle_invalidations == 0
            && self.oracle_rebuilds == 0
            && self.parallel_windows == 0
            && !self.sampled
            && self.ncl_overflow == 0
            && self.ncl_load.iter().all(|&c| c == 0)
    }

    /// In-window success rate (`deliveries / queries_issued`), `None`
    /// when no queries were issued — note this relates deliveries to
    /// *issues of the same window*, so it dips below run-level success
    /// when delays push deliveries into later windows.
    pub fn success_rate(&self) -> Option<f64> {
        (self.queries_issued > 0).then(|| self.deliveries as f64 / self.queries_issued as f64)
    }
}

/// Whole-run sums over every window — the conservation surface checked
/// against [`Metrics`](crate::metrics::Metrics) totals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryTotals {
    /// Total contacts dispatched.
    pub contacts: u64,
    /// Total contacts lost to fault injection.
    pub contacts_lost: u64,
    /// Total data items injected (= `Metrics::data_generated`).
    pub data_injected: u64,
    /// Total queries issued (= `Metrics::queries_issued`).
    pub queries_issued: u64,
    /// Total in-time deliveries (= `Metrics::queries_satisfied`).
    pub deliveries: u64,
    /// Total duplicate deliveries (= `Metrics::duplicate_deliveries`).
    pub duplicate_deliveries: u64,
    /// Total late deliveries (= `Metrics::late_deliveries`).
    pub late_deliveries: u64,
    /// Total unknown-query deliveries.
    pub unknown_deliveries: u64,
    /// Total delay sum (= `Metrics::total_delay_secs`).
    pub delay_sum_secs: u64,
    /// Total bytes accepted (= `Metrics::bytes_transmitted`).
    pub bytes_transmitted: u64,
    /// Total budget rejections (= `Metrics::transfers_rejected`).
    pub transfers_rejected: u64,
    /// Total replacement evictions.
    pub replacements: u64,
    /// Total epochs fired.
    pub epochs: u64,
    /// Total re-elections.
    pub reelections: u64,
    /// Total oracle invalidations.
    pub oracle_invalidations: u64,
    /// Total oracle rebuilds.
    pub oracle_rebuilds: u64,
    /// Total path-table recomputes (sum of window deltas).
    pub oracle_recomputes: u64,
    /// Total path-table hits (sum of window deltas).
    pub oracle_hits: u64,
    /// Total query arrivals at central nodes, including overflow slots.
    pub ncl_load: u64,
    /// Total delivered-query NCL credits.
    pub ncl_hits: u64,
}

/// The flight recorder: a [`Probe`] folding events into fixed windows.
/// See the module docs for the discipline.
#[derive(Debug)]
pub struct Telemetry {
    window_secs: u64,
    origin: Time,
    ncl_slots: usize,
    preallocated: usize,
    windows: Vec<WindowStats>,
    /// `query id → first central slot` (NCL_NONE until seen).
    query_first_ncl: Vec<u16>,
    last_oracle_recomputes: u64,
    last_oracle_hits: u64,
    /// Harness-declared overlay intervals: (kind, start, end).
    overlays: Vec<(String, Time, Time)>,
}

impl Telemetry {
    /// Version tag of the JSONL window schema. Bump on any change to
    /// the line layout; `experiments compare` refuses unknown versions
    /// rather than misaligning series.
    pub const SCHEMA: &'static str = "dtn-telemetry/1";

    /// A recorder with the given layout; the window array is
    /// preallocated to cover `config.horizon`.
    ///
    /// # Panics
    ///
    /// Panics if the window width is zero. Use
    /// [`Telemetry::try_new`] to handle that as a value instead.
    pub fn new(config: &TelemetryConfig) -> Self {
        match Telemetry::try_new(config) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible [`Telemetry::new`]: rejects a zero window width with a
    /// structured [`TelemetryError`] rather than panicking — the right
    /// entry point when the layout comes from user input (CLI flags,
    /// config files) rather than a programmer constant.
    pub fn try_new(config: &TelemetryConfig) -> Result<Self, TelemetryError> {
        if config.window.0 == 0 {
            return Err(TelemetryError::ZeroWindowWidth);
        }
        let prealloc = (config.horizon.0 / config.window.0 + 1) as usize;
        Ok(Telemetry {
            window_secs: config.window.0,
            origin: config.origin,
            ncl_slots: config.ncl_slots,
            preallocated: prealloc,
            windows: (0..prealloc)
                .map(|_| WindowStats::empty(config.ncl_slots))
                .collect(),
            query_first_ncl: Vec::new(),
            last_oracle_recomputes: 0,
            last_oracle_hits: 0,
            overlays: Vec::new(),
        })
    }

    /// Declares that an overlay regime was active over `[start, end)`;
    /// windows overlapping the interval carry the `kind` flag in the
    /// export and the rendered table.
    pub fn mark_overlay(&mut self, kind: &str, start: Time, end: Time) {
        self.overlays.push((kind.to_string(), start, end));
    }

    /// Window width in seconds.
    pub fn window_secs(&self) -> u64 {
        self.window_secs
    }

    /// Simulation time of window 0's left edge.
    pub fn origin(&self) -> Time {
        self.origin
    }

    /// The folded windows (trailing all-empty windows included).
    pub fn windows(&self) -> &[WindowStats] {
        &self.windows
    }

    /// Whether recording outgrew the preallocated horizon (the array
    /// reallocated mid-run — accounting is still exact).
    pub fn overran_hint(&self) -> bool {
        self.windows.len() > self.preallocated
    }

    /// Overlay kinds active in window `index`.
    pub fn overlays_in(&self, index: usize) -> Vec<&str> {
        let start = self.origin.0 + index as u64 * self.window_secs;
        let end = start + self.window_secs;
        self.overlays
            .iter()
            .filter(|(_, s, e)| s.0 < end && e.0 > start)
            .map(|(k, _, _)| k.as_str())
            .collect()
    }

    fn window_mut(&mut self, at: Time) -> &mut WindowStats {
        let idx = (at.0.saturating_sub(self.origin.0) / self.window_secs) as usize;
        while self.windows.len() <= idx {
            self.windows.push(WindowStats::empty(self.ncl_slots));
        }
        &mut self.windows[idx]
    }

    /// Sums every window into whole-run totals.
    pub fn totals(&self) -> TelemetryTotals {
        let mut t = TelemetryTotals::default();
        for w in &self.windows {
            t.contacts += w.contacts;
            t.contacts_lost += w.contacts_lost;
            t.data_injected += w.data_injected;
            t.queries_issued += w.queries_issued;
            t.deliveries += w.deliveries;
            t.duplicate_deliveries += w.duplicate_deliveries;
            t.late_deliveries += w.late_deliveries;
            t.unknown_deliveries += w.unknown_deliveries;
            t.delay_sum_secs += w.delay_sum_secs;
            t.bytes_transmitted += w.bytes_transmitted;
            t.transfers_rejected += w.transfers_rejected;
            t.replacements += w.replacements;
            t.epochs += w.epochs;
            t.reelections += w.reelections;
            t.oracle_invalidations += w.oracle_invalidations;
            t.oracle_rebuilds += w.oracle_rebuilds;
            t.oracle_recomputes += w.oracle_recomputes;
            t.oracle_hits += w.oracle_hits;
            t.ncl_load += w.ncl_load.iter().sum::<u64>() + w.ncl_overflow;
            t.ncl_hits += w.ncl_hits.iter().sum::<u64>();
        }
        t
    }

    /// One `{"type":"window",...}` line per non-empty window (trailing
    /// and interior empty windows are skipped; `index` keeps alignment
    /// exact). The series is preceded elsewhere by a versioned run
    /// header carrying [`Telemetry::SCHEMA`].
    pub fn to_jsonl(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, w) in self.windows.iter().enumerate() {
            if w.is_empty() {
                continue;
            }
            let start = self.origin.0 + i as u64 * self.window_secs;
            let _ = write!(
                out,
                "{{\"type\":\"window\",\"index\":{i},\"start\":{start},\"end\":{}",
                start + self.window_secs
            );
            let _ = write!(
                out,
                ",\"contacts\":{},\"contacts_lost\":{},\"data_injected\":{},\"queries_issued\":{}",
                w.contacts, w.contacts_lost, w.data_injected, w.queries_issued
            );
            let _ = write!(
                out,
                ",\"deliveries\":{},\"duplicate_deliveries\":{},\"late_deliveries\":{},\"unknown_deliveries\":{},\"delay_sum_secs\":{}",
                w.deliveries, w.duplicate_deliveries, w.late_deliveries, w.unknown_deliveries, w.delay_sum_secs
            );
            let _ = write!(
                out,
                ",\"bytes_transmitted\":{},\"transfers_rejected\":{},\"replacements\":{}",
                w.bytes_transmitted, w.transfers_rejected, w.replacements
            );
            let _ = write!(
                out,
                ",\"epochs\":{},\"reelections\":{},\"oracle_invalidations\":{},\"oracle_rebuilds\":{},\"oracle_recomputes\":{},\"oracle_hits\":{}",
                w.epochs, w.reelections, w.oracle_invalidations, w.oracle_rebuilds, w.oracle_recomputes, w.oracle_hits
            );
            let _ = write!(
                out,
                ",\"parallel_windows\":{},\"parallel_contacts\":{},\"parallel_batches\":{},\"parallel_widest\":{},\"parallel_conflicts\":{}",
                w.parallel_windows, w.parallel_contacts, w.parallel_batches, w.parallel_widest, w.parallel_conflicts
            );
            if w.sampled {
                let _ = write!(
                    out,
                    ",\"cache_copies\":{},\"cache_bytes\":{}",
                    w.cache_copies, w.cache_bytes
                );
            }
            let join = |xs: &[u64]| {
                xs.iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            let _ = write!(
                out,
                ",\"ncl_load\":[{}],\"ncl_hits\":[{}],\"ncl_overflow\":{}",
                join(&w.ncl_load),
                join(&w.ncl_hits),
                w.ncl_overflow
            );
            let overlays = self.overlays_in(i);
            if !overlays.is_empty() {
                let list = overlays
                    .iter()
                    .map(|k| format!("\"{k}\""))
                    .collect::<Vec<_>>()
                    .join(",");
                let _ = write!(out, ",\"overlays\":[{list}]");
            }
            out.push_str("}\n");
        }
        out
    }

    /// Renders the series as an over-time table (one row per non-empty
    /// window) — the body of `experiments timeline`.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>10} {:>8} {:>8} {:>7} {:>6} {:>9} {:>10} {:>9} {:>9} overlays",
            "win",
            "t_start",
            "contacts",
            "queries",
            "deliv",
            "succ%",
            "delay_h",
            "tx_MB",
            "ncl_load",
            "orc_rc/h"
        );
        for (i, w) in self.windows.iter().enumerate() {
            if w.is_empty() {
                continue;
            }
            let start = self.origin.0 + i as u64 * self.window_secs;
            let succ = w
                .success_rate()
                .map_or("-".to_string(), |r| format!("{:.1}", r * 100.0));
            let delay_h = if w.deliveries > 0 {
                format!(
                    "{:.2}",
                    w.delay_sum_secs as f64 / w.deliveries as f64 / 3600.0
                )
            } else {
                "-".to_string()
            };
            let load: u64 = w.ncl_load.iter().sum::<u64>() + w.ncl_overflow;
            let overlays = self.overlays_in(i).join("+");
            let _ = writeln!(
                out,
                "{:>4} {:>10} {:>8} {:>8} {:>7} {:>6} {:>9} {:>10.2} {:>9} {:>4}/{:<4} {}",
                i,
                start,
                w.contacts,
                w.queries_issued,
                w.deliveries,
                succ,
                delay_h,
                w.bytes_transmitted as f64 / (1024.0 * 1024.0),
                load,
                w.oracle_recomputes,
                w.oracle_hits,
                overlays
            );
        }
        if self.overran_hint() {
            let _ = writeln!(out, "(window array overran its horizon hint)");
        }
        out
    }

    fn note_first_central(&mut self, query: u64, slot: u16) {
        let idx = query as usize;
        if idx >= self.query_first_ncl.len() {
            self.query_first_ncl.resize(idx + 1, NCL_NONE);
        }
        if self.query_first_ncl[idx] == NCL_NONE {
            self.query_first_ncl[idx] = slot;
        }
    }
}

impl Probe for Telemetry {
    fn record(&mut self, event: &ProbeEvent) {
        match *event {
            ProbeEvent::ContactBegin { at, .. } => self.window_mut(at).contacts += 1,
            ProbeEvent::ContactEnd { .. } => {}
            ProbeEvent::ContactLost { at, .. } => self.window_mut(at).contacts_lost += 1,
            ProbeEvent::DataInjected { at, .. } => self.window_mut(at).data_injected += 1,
            ProbeEvent::QueryInjected { at, query, .. } => {
                self.window_mut(at).queries_issued += 1;
                // Reserve (and reset) the first-central slot so
                // delivery-time lookups are bounds-safe even for
                // never-routed queries.
                let idx = query.0 as usize;
                if idx >= self.query_first_ncl.len() {
                    self.query_first_ncl.resize(idx + 1, NCL_NONE);
                }
                self.query_first_ncl[idx] = NCL_NONE;
            }
            ProbeEvent::EpochFired { at, .. } => self.window_mut(at).epochs += 1,
            ProbeEvent::TransmitAccepted { at, bytes } => {
                self.window_mut(at).bytes_transmitted += bytes;
            }
            ProbeEvent::TransmitRejected { at, .. } => {
                self.window_mut(at).transfers_rejected += 1;
            }
            ProbeEvent::Delivery { at, query, outcome } => match outcome {
                DeliveryOutcome::Accepted { delay } => {
                    let slot = self
                        .query_first_ncl
                        .get(query.0 as usize)
                        .copied()
                        .unwrap_or(NCL_NONE);
                    let w = self.window_mut(at);
                    w.deliveries += 1;
                    w.delay_sum_secs += delay.as_secs();
                    if (slot as usize) < w.ncl_hits.len() {
                        w.ncl_hits[slot as usize] += 1;
                    }
                }
                DeliveryOutcome::Duplicate => self.window_mut(at).duplicate_deliveries += 1,
                DeliveryOutcome::Late => self.window_mut(at).late_deliveries += 1,
                DeliveryOutcome::Unknown => self.window_mut(at).unknown_deliveries += 1,
            },
            ProbeEvent::CacheSampled { at, copies, bytes } => {
                let w = self.window_mut(at);
                w.cache_copies = copies;
                w.cache_bytes = bytes;
                w.sampled = true;
            }
            ProbeEvent::QueryAtCentral { at, query, ncl } => {
                let slots = self.ncl_slots;
                let slot = if ncl < slots {
                    ncl as u16
                } else {
                    NCL_OVERFLOW
                };
                self.note_first_central(query.0, slot);
                let w = self.window_mut(at);
                if ncl < slots {
                    w.ncl_load[ncl] += 1;
                } else {
                    w.ncl_overflow += 1;
                }
            }
            ProbeEvent::ReplacementEvicted { at, .. } => self.window_mut(at).replacements += 1,
            ProbeEvent::CentralReelected { at, .. } => self.window_mut(at).reelections += 1,
            ProbeEvent::OracleRebuilt {
                at,
                table_recomputes,
                table_hits,
                ..
            } => {
                let d_rc = table_recomputes.saturating_sub(self.last_oracle_recomputes);
                let d_hit = table_hits.saturating_sub(self.last_oracle_hits);
                self.last_oracle_recomputes = table_recomputes;
                self.last_oracle_hits = table_hits;
                let w = self.window_mut(at);
                w.oracle_rebuilds += 1;
                w.oracle_recomputes += d_rc;
                w.oracle_hits += d_hit;
            }
            ProbeEvent::OracleInvalidated { at } => {
                self.window_mut(at).oracle_invalidations += 1;
            }
            ProbeEvent::ParallelWindow {
                at,
                contacts,
                batches,
                widest,
                conflicts,
            } => {
                let w = self.window_mut(at);
                w.parallel_windows += 1;
                w.parallel_contacts += contacts;
                w.parallel_batches += batches;
                w.parallel_widest = w.parallel_widest.max(widest);
                w.parallel_conflicts += conflicts;
            }
            ProbeEvent::PushRelay { .. }
            | ProbeEvent::PushSettled { .. }
            | ProbeEvent::QueryRelay { .. }
            | ProbeEvent::BroadcastSpread { .. }
            | ProbeEvent::ResponseDecision { .. }
            | ProbeEvent::ResponseSpawned { .. }
            | ProbeEvent::ResponseRelay { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dtn_core::ids::{DataId, NodeId, QueryId};

    fn telemetry(window: u64, horizon: u64, slots: usize) -> Telemetry {
        Telemetry::new(&TelemetryConfig {
            window: Duration(window),
            origin: Time(0),
            horizon: Duration(horizon),
            ncl_slots: slots,
        })
    }

    fn inject(t: &mut Telemetry, q: u64, at: u64) {
        t.record(&ProbeEvent::QueryInjected {
            at: Time(at),
            query: QueryId(q),
            requester: NodeId(1),
            data: DataId(0),
            expires_at: Time(at + 1000),
        });
    }

    fn deliver(t: &mut Telemetry, q: u64, at: u64, delay: u64) {
        t.record(&ProbeEvent::Delivery {
            at: Time(at),
            query: QueryId(q),
            outcome: DeliveryOutcome::Accepted {
                delay: Duration(delay),
            },
        });
    }

    #[test]
    fn events_land_in_their_windows() {
        let mut t = telemetry(100, 1000, 2);
        inject(&mut t, 0, 10);
        inject(&mut t, 1, 150);
        deliver(&mut t, 0, 250, 240);
        t.record(&ProbeEvent::ContactBegin {
            at: Time(950),
            a: NodeId(0),
            b: NodeId(1),
            budget: 1,
        });
        assert_eq!(t.windows()[0].queries_issued, 1);
        assert_eq!(t.windows()[1].queries_issued, 1);
        assert_eq!(t.windows()[2].deliveries, 1);
        assert_eq!(t.windows()[2].delay_sum_secs, 240);
        assert_eq!(t.windows()[9].contacts, 1);
        assert!(!t.overran_hint());
        let totals = t.totals();
        assert_eq!(totals.queries_issued, 2);
        assert_eq!(totals.deliveries, 1);
        assert_eq!(totals.delay_sum_secs, 240);
    }

    #[test]
    fn window_array_grows_past_the_hint() {
        let mut t = telemetry(10, 100, 1);
        inject(&mut t, 0, 5_000);
        assert!(t.overran_hint());
        assert_eq!(t.totals().queries_issued, 1);
    }

    #[test]
    fn ncl_hit_credits_the_first_central_slot_in_the_delivery_window() {
        let mut t = telemetry(100, 1000, 3);
        inject(&mut t, 7, 10);
        t.record(&ProbeEvent::QueryAtCentral {
            at: Time(50),
            query: QueryId(7),
            ncl: 2,
        });
        // A later arrival at another slot must not steal the credit.
        t.record(&ProbeEvent::QueryAtCentral {
            at: Time(60),
            query: QueryId(7),
            ncl: 0,
        });
        deliver(&mut t, 7, 250, 240);
        assert_eq!(t.windows()[0].ncl_load, vec![1, 0, 1].into_boxed_slice());
        assert_eq!(t.windows()[2].ncl_hits, vec![0, 0, 1].into_boxed_slice());
        let totals = t.totals();
        assert_eq!(totals.ncl_load, 2);
        assert_eq!(totals.ncl_hits, 1);
    }

    #[test]
    fn out_of_range_slots_count_as_overflow_not_panic() {
        let mut t = telemetry(100, 1000, 2);
        inject(&mut t, 0, 10);
        t.record(&ProbeEvent::QueryAtCentral {
            at: Time(20),
            query: QueryId(0),
            ncl: 17,
        });
        deliver(&mut t, 0, 30, 20);
        assert_eq!(t.windows()[0].ncl_overflow, 1);
        // Overflow first-central slots earn no per-slot hit credit.
        assert!(t.windows()[0].ncl_hits.iter().all(|&h| h == 0));
        assert_eq!(t.totals().ncl_load, 1);
    }

    #[test]
    fn oracle_counters_fold_cumulative_into_deltas() {
        let mut t = telemetry(100, 1000, 1);
        t.record(&ProbeEvent::OracleRebuilt {
            at: Time(10),
            epoch: 1,
            table_recomputes: 40,
            table_hits: 100,
        });
        t.record(&ProbeEvent::OracleRebuilt {
            at: Time(150),
            epoch: 2,
            table_recomputes: 70,
            table_hits: 180,
        });
        assert_eq!(t.windows()[0].oracle_recomputes, 40);
        assert_eq!(t.windows()[0].oracle_hits, 100);
        assert_eq!(t.windows()[1].oracle_recomputes, 30);
        assert_eq!(t.windows()[1].oracle_hits, 80);
        let totals = t.totals();
        assert_eq!(totals.oracle_rebuilds, 2);
        assert_eq!(totals.oracle_recomputes, 70);
        assert_eq!(totals.oracle_hits, 180);
    }

    #[test]
    fn delivery_outcomes_split_and_gauges_keep_last_sample() {
        let mut t = telemetry(100, 1000, 1);
        inject(&mut t, 0, 10);
        deliver(&mut t, 0, 20, 10);
        t.record(&ProbeEvent::Delivery {
            at: Time(30),
            query: QueryId(0),
            outcome: DeliveryOutcome::Duplicate,
        });
        t.record(&ProbeEvent::Delivery {
            at: Time(40),
            query: QueryId(0),
            outcome: DeliveryOutcome::Late,
        });
        t.record(&ProbeEvent::CacheSampled {
            at: Time(50),
            copies: 5,
            bytes: 1000,
        });
        t.record(&ProbeEvent::CacheSampled {
            at: Time(60),
            copies: 7,
            bytes: 2000,
        });
        let w = &t.windows()[0];
        assert_eq!(
            (w.deliveries, w.duplicate_deliveries, w.late_deliveries),
            (1, 1, 1)
        );
        assert!(w.sampled);
        assert_eq!((w.cache_copies, w.cache_bytes), (7, 2000));
        assert_eq!(w.success_rate(), Some(1.0));
    }

    #[test]
    fn jsonl_skips_empty_windows_and_keeps_indices() {
        let mut t = telemetry(100, 1000, 2);
        inject(&mut t, 0, 10);
        inject(&mut t, 1, 910);
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"index\":0"));
        assert!(lines[0].contains("\"start\":0"));
        assert!(lines[0].contains("\"end\":100"));
        assert!(lines[1].contains("\"index\":9"));
        assert!(lines
            .iter()
            .all(|l| l.starts_with("{\"type\":\"window\"") && l.ends_with('}')));
    }

    #[test]
    fn overlay_marks_flag_overlapping_windows() {
        let mut t = telemetry(100, 1000, 1);
        t.mark_overlay("ncl-blackout", Time(150), Time(350));
        inject(&mut t, 0, 50);
        inject(&mut t, 1, 250);
        assert!(t.overlays_in(0).is_empty());
        assert_eq!(t.overlays_in(1), vec!["ncl-blackout"]);
        assert_eq!(t.overlays_in(2), vec!["ncl-blackout"]);
        assert_eq!(t.overlays_in(3), vec!["ncl-blackout"]);
        assert!(t.overlays_in(4).is_empty());
        let jsonl = t.to_jsonl();
        let w2 = jsonl
            .lines()
            .find(|l| l.contains("\"index\":2"))
            .expect("window 2 exported");
        assert!(w2.contains("\"overlays\":[\"ncl-blackout\"]"));
        let table = t.render_table();
        assert!(table.contains("ncl-blackout"));
    }

    #[test]
    fn pre_origin_events_clamp_into_window_zero() {
        let mut t = Telemetry::new(&TelemetryConfig {
            window: Duration(100),
            origin: Time(500),
            horizon: Duration(1000),
            ncl_slots: 1,
        });
        inject(&mut t, 0, 450); // before the origin
        inject(&mut t, 1, 510);
        assert_eq!(t.windows()[0].queries_issued, 2);
    }

    #[test]
    fn spanning_layout_rounds_width_up() {
        let cfg = TelemetryConfig::spanning(Time(0), Duration(1001), 10, 4);
        assert_eq!(cfg.window.0, 101);
        assert_eq!(cfg.ncl_slots, 4);
    }

    #[test]
    fn zero_width_window_is_a_structured_error() {
        let cfg = TelemetryConfig {
            window: Duration(0),
            origin: Time(0),
            horizon: Duration(1000),
            ncl_slots: 1,
        };
        let err = Telemetry::try_new(&cfg).expect_err("zero width rejected");
        assert_eq!(err, TelemetryError::ZeroWindowWidth);
        assert!(err.to_string().contains("positive"), "{err}");
        // `spanning` can never produce the degenerate layout, even from
        // degenerate inputs.
        let cfg = TelemetryConfig::spanning(Time(0), Duration(0), 0, 1);
        assert!(cfg.window.0 > 0);
        assert!(Telemetry::try_new(&cfg).is_ok());
    }

    #[test]
    #[should_panic(expected = "window width must be positive")]
    fn zero_width_window_panics_through_the_infallible_constructor() {
        let _ = telemetry(0, 1000, 1);
    }

    #[test]
    fn partial_final_window_covers_the_horizon_remainder() {
        // horizon 250 at width 100: the layout needs a third, partial
        // window. Preallocation rounds up, so the final window covers
        // [200, 300) — events up to and past the 250 s horizon (late
        // deliveries of in-horizon queries) fold into it without
        // growing the array, and conservation holds across the
        // remainder.
        let mut t = telemetry(100, 250, 1);
        assert_eq!(t.windows().len(), 3);
        inject(&mut t, 0, 240); // inside the horizon
        inject(&mut t, 1, 250); // exactly at the horizon
        deliver(&mut t, 0, 299, 59); // trailing event past the horizon
        assert!(!t.overran_hint(), "remainder events fit the prealloc");
        assert_eq!(t.windows()[2].queries_issued, 2);
        assert_eq!(t.windows()[2].deliveries, 1);
        let totals = t.totals();
        assert_eq!(totals.queries_issued, 2);
        assert_eq!(totals.deliveries, 1);
        assert_eq!(totals.delay_sum_secs, 59);
        // The export reports the full nominal width for the remainder
        // window — edges stay aligned for the compare harness.
        let jsonl = t.to_jsonl();
        assert!(jsonl.contains("\"index\":2,\"start\":200,\"end\":300"));
        // One second past the remainder window grows the array (exact
        // accounting, flagged hint overrun).
        inject(&mut t, 2, 300);
        assert!(t.overran_hint());
        assert_eq!(t.windows()[3].queries_issued, 1);
        assert_eq!(t.totals().queries_issued, 3);
    }

    #[test]
    fn exact_multiple_horizon_still_accepts_boundary_events() {
        // horizon 200 at width 100: windows [0,100) and [100,200) cover
        // the span, and the rounding rule keeps one spare window so an
        // event at exactly t=200 (closing sample, end-of-run epoch)
        // lands without growing the array.
        let mut t = telemetry(100, 200, 1);
        assert_eq!(t.windows().len(), 3);
        inject(&mut t, 0, 200);
        assert!(!t.overran_hint());
        assert_eq!(t.windows()[2].queries_issued, 1);
    }
}
