//! Reproducibility: the whole stack — trace generation, workload,
//! buffer assignment, protocol randomness — is a pure function of the
//! seeds.

use dtn_coop_cache::prelude::*;

#[test]
fn identical_seeds_identical_reports() {
    let make = || {
        let trace = SyntheticTraceBuilder::new(18)
            .duration(Duration::days(1))
            .target_contacts(5_000)
            .seed(9)
            .build();
        let cfg = ExperimentConfig {
            ncl_count: 2,
            mean_data_lifetime: Duration::hours(6),
            mean_data_size: 1 << 20,
            buffer_range: (8 << 20, 16 << 20),
            ..ExperimentConfig::default()
        };
        run_experiment(&trace, SchemeKind::Intentional, &cfg, 77)
    };
    assert_eq!(make(), make());
}

#[test]
fn different_seeds_differ_somewhere() {
    let trace = SyntheticTraceBuilder::new(18)
        .duration(Duration::days(1))
        .target_contacts(5_000)
        .seed(9)
        .build();
    let cfg = ExperimentConfig {
        ncl_count: 2,
        mean_data_lifetime: Duration::hours(6),
        mean_data_size: 1 << 20,
        buffer_range: (8 << 20, 16 << 20),
        ..ExperimentConfig::default()
    };
    let a = run_experiment(&trace, SchemeKind::Intentional, &cfg, 1);
    let b = run_experiment(&trace, SchemeKind::Intentional, &cfg, 2);
    // Different seeds generate different workloads.
    assert_ne!(a.metrics, b.metrics);
}

#[test]
fn trace_generation_is_deterministic_across_scales() {
    let full = SyntheticTraceBuilder::new(25)
        .duration(Duration::days(2))
        .target_contacts(10_000)
        .seed(4)
        .build();
    let again = SyntheticTraceBuilder::new(25)
        .duration(Duration::days(2))
        .target_contacts(10_000)
        .seed(4)
        .build();
    assert_eq!(full, again);
}
