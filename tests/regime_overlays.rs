//! Regime overlays under the audit layer.
//!
//! Two end-to-end guarantees:
//!
//! - a corrupted contact source — out-of-order, inverted, self-loop and
//!   out-of-range contacts spliced between valid ones — trips the
//!   trace-monotonicity law with one structured violation per bad
//!   contact and the run completes instead of panicking downstream;
//! - every composed [`RegimeOverlay`] stream stays audit-clean: the
//!   drop-only filtering cannot manufacture a violation of its own.

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{ContactSource, SimConfig, Simulator, TraceSource};
use dtn_coop_cache::sim::AuditLaw;
use dtn_trace::trace::Contact;

/// A contact source that replays a literal contact list verbatim — no
/// ordering or well-formedness guarantees, unlike [`TraceSource`] and
/// the generators. This is the corruption injector.
struct RawSource {
    contacts: Vec<Contact>,
    next: usize,
    nodes: usize,
    end: Time,
}

impl ContactSource for RawSource {
    fn node_count(&self) -> usize {
        self.nodes
    }
    fn end_time(&self) -> Time {
        self.end
    }
    fn peek(&mut self) -> Option<Contact> {
        self.contacts.get(self.next).copied()
    }
    fn advance(&mut self) {
        self.next += 1;
    }
}

/// A well-formed contact `a—b` at `[start, start + 60)`.
fn ok_contact(a: u32, b: u32, start: u64) -> Contact {
    Contact::new(NodeId(a), NodeId(b), Time(start), Time(start + 60))
}

/// Literal struct construction bypasses [`Contact::new`]'s validation,
/// exactly like a corrupted on-disk trace or a buggy source would.
fn raw_contact(a: u32, b: u32, start: u64, end: u64) -> Contact {
    Contact {
        a: NodeId(a),
        b: NodeId(b),
        start: Time(start),
        end: Time(end),
    }
}

#[test]
fn corrupted_source_trips_trace_monotonicity_without_panicking() {
    let nodes = 6;
    let mut contacts = Vec::new();
    for i in 0..40u64 {
        contacts.push(ok_contact((i % 5) as u32, ((i % 5) + 1) as u32, 100 * i));
    }
    // Four distinct corruptions spliced mid-stream.
    contacts.insert(10, raw_contact(0, 1, 950, 940)); // inverted interval
    contacts.insert(20, raw_contact(3, 3, 1_900, 1_960)); // self-loop
    contacts.insert(30, raw_contact(2, 17, 2_800, 2_860)); // node out of range
    contacts.push(raw_contact(1, 2, 50, 110)); // time travel after 3900

    let source = RawSource {
        contacts,
        next: 0,
        nodes,
        end: Time(5_000),
    };
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: 2,
        ..IntentionalConfig::default()
    });
    let mut sim = Simulator::from_source(
        source,
        scheme,
        SimConfig {
            audit: true,
            seed: 9,
            ..SimConfig::default()
        },
    );
    sim.run_to_end();

    let report = sim.audit_report().expect("audit was enabled");
    let monotonicity: Vec<_> = report
        .violations()
        .iter()
        .filter(|v| v.law == AuditLaw::TraceMonotonicity)
        .collect();
    assert_eq!(
        monotonicity.len(),
        4,
        "each corruption reports exactly one violation: {report:?}"
    );
    // Quarantine keeps the malformed contacts out of the rate table:
    // only the 40 valid contacts are recorded.
    assert_eq!(
        report
            .violations()
            .iter()
            .filter(|v| v.law != AuditLaw::TraceMonotonicity)
            .count(),
        0,
        "quarantine must prevent secondary violations"
    );
    assert_eq!(sim.rate_table().total_contacts(), 40);
}

#[test]
fn clean_source_reports_no_monotonicity_violations() {
    let contacts: Vec<Contact> = (0..40u64)
        .map(|i| ok_contact((i % 5) as u32, ((i % 5) + 1) as u32, 100 * i))
        .collect();
    let source = RawSource {
        contacts,
        next: 0,
        nodes: 6,
        end: Time(5_000),
    };
    let mut sim = Simulator::from_source(
        source,
        IntentionalScheme::new(IntentionalConfig::default()),
        SimConfig {
            audit: true,
            seed: 9,
            ..SimConfig::default()
        },
    );
    sim.run_to_end();
    let report = sim.audit_report().expect("audit was enabled");
    assert!(report.is_clean(), "{}", report.summary());
    assert_eq!(sim.rate_table().total_contacts(), 40);
}

/// End-to-end: every overlay kind composed over a synthetic trace runs
/// audit-clean (including the trace-monotonicity law over the filtered
/// stream), and drop-kind overlays actually suppress contacts.
#[test]
fn every_overlay_kind_runs_audit_clean() {
    let trace = SyntheticTraceBuilder::new(16)
        .duration(Duration::days(1))
        .target_contacts(4_000)
        .contact_process(ContactProcessKind::PARETO)
        .seed(21)
        .build();
    let mid = trace.midpoint();
    let end = Time(trace.duration().as_secs());
    let window = (Time(mid.as_secs() + 3_600), Time(end.as_secs() - 3_600));
    let overlays = [
        RegimeOverlay::new(
            window.0,
            window.1,
            OverlayKind::FlashCrowd {
                item: DataId(0),
                requests: 12,
                constraint: Duration::hours(4),
            },
        ),
        RegimeOverlay::new(
            window.0,
            window.1,
            OverlayKind::NclBlackout {
                nodes: vec![NodeId(0), NodeId(1)],
            },
        ),
        RegimeOverlay::new(window.0, window.1, OverlayKind::Partition { cut: 8 }),
        RegimeOverlay::new(
            window.0,
            window.1,
            OverlayKind::BufferFamine {
                items: 6,
                size: 2_000,
            },
        ),
    ];
    for overlay in overlays {
        let name = overlay.kind.name();
        let drops = matches!(
            overlay.kind,
            OverlayKind::NclBlackout { .. } | OverlayKind::Partition { .. }
        );
        let extra = overlay.workload_events(16, 100);
        let source = OverlaySource::new(TraceSource::new(&trace), vec![overlay]);
        let mut sim = Simulator::from_source(
            source,
            IntentionalScheme::new(IntentionalConfig {
                ncl_count: 2,
                ..IntentionalConfig::default()
            }),
            SimConfig {
                audit: true,
                seed: 5,
                ..SimConfig::default()
            },
        );
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..16u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        let table = sim.rate_table().clone();
        sim.scheme_mut().configure(&NetworkSetup {
            rate_table: &table,
            now: mid,
            capacities,
            horizon: 7_200.0,
            path_refresh: None,
        });
        sim.add_workload(extra);
        sim.run_to_end();
        let report = sim.audit_report().expect("audit was enabled");
        assert!(report.is_clean(), "{name}: {}", report.summary());
        assert_eq!(
            sim.source().dropped() > 0,
            drops,
            "{name}: unexpected drop count {}",
            sim.source().dropped()
        );
    }
}
