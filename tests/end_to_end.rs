//! Cross-crate integration tests: the full warm-up → NCL selection →
//! workload → metrics pipeline for every scheme.

use dtn_coop_cache::prelude::*;

fn test_trace(seed: u64) -> ContactTrace {
    SyntheticTraceBuilder::new(20)
        .duration(Duration::days(2))
        .target_contacts(8_000)
        .edge_density(0.3)
        .seed(seed)
        .build()
}

fn test_config() -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 3,
        mean_data_lifetime: Duration::hours(8),
        mean_data_size: 2 << 20,
        buffer_range: (16 << 20, 48 << 20),
        ..ExperimentConfig::default()
    }
}

#[test]
fn all_schemes_produce_sane_metrics() {
    let trace = test_trace(1);
    let cfg = test_config();
    for kind in SchemeKind::ALL {
        let report = run_experiment(&trace, kind, &cfg, 3);
        assert!(report.queries_issued > 0, "{kind}: no queries");
        assert!(
            (0.0..=1.0).contains(&report.success_ratio),
            "{kind}: ratio {}",
            report.success_ratio
        );
        assert!(report.avg_delay_hours >= 0.0, "{kind}: negative delay");
        assert!(
            report.avg_copies_per_item >= 0.0,
            "{kind}: negative overhead"
        );
        // A satisfied query implies transmitted bytes (data moved) unless
        // it was a zero-delay local hit.
        if report.success_ratio > 0.0 && report.metrics.total_delay_secs > 0 {
            assert!(report.metrics.bytes_transmitted > 0, "{kind}: free lunch");
        }
    }
}

#[test]
fn intentional_selects_requested_ncl_count() {
    let trace = test_trace(2);
    for k in [1usize, 2, 5] {
        let cfg = ExperimentConfig {
            ncl_count: k,
            ..test_config()
        };
        let report = run_experiment(&trace, SchemeKind::Intentional, &cfg, 1);
        assert_eq!(report.central_nodes.len(), k);
    }
}

#[test]
fn success_improves_with_longer_lifetimes() {
    // Fig. 10(a)'s monotone trend, at integration-test scale: longer
    // lifetimes give data more time to reach requesters.
    let trace = test_trace(3);
    let short = ExperimentConfig {
        mean_data_lifetime: Duration::hours(2),
        ..test_config()
    };
    let long = ExperimentConfig {
        mean_data_lifetime: Duration::hours(16),
        ..test_config()
    };
    let mut s_short = 0.0;
    let mut s_long = 0.0;
    for seed in 0..3 {
        s_short += run_experiment(&trace, SchemeKind::Intentional, &short, seed).success_ratio;
        s_long += run_experiment(&trace, SchemeKind::Intentional, &long, seed).success_ratio;
    }
    assert!(
        s_long > s_short,
        "longer T_L must help: {s_long:.3} !> {s_short:.3}"
    );
}

#[test]
fn tight_buffers_reduce_performance() {
    // Fig. 11's trend: tighter buffers (relative to data size) hurt.
    let trace = test_trace(4);
    let roomy = test_config();
    let tight = ExperimentConfig {
        buffer_range: (3 << 20, 5 << 20), // barely fits one item
        ..test_config()
    };
    let mut s_roomy = 0.0;
    let mut s_tight = 0.0;
    for seed in 0..3 {
        s_roomy += run_experiment(&trace, SchemeKind::Intentional, &roomy, seed).success_ratio;
        s_tight += run_experiment(&trace, SchemeKind::Intentional, &tight, seed).success_ratio;
    }
    assert!(
        s_roomy >= s_tight,
        "roomy {s_roomy:.3} must be at least tight {s_tight:.3}"
    );
}

#[test]
fn caching_overhead_bounded_by_ncl_count_plus_requesters() {
    // The intentional scheme caches at most one copy per NCL (plus the
    // source's transient copy), so overhead per item stays near K.
    let trace = test_trace(5);
    let cfg = ExperimentConfig {
        ncl_count: 2,
        ..test_config()
    };
    let report = run_experiment(&trace, SchemeKind::Intentional, &cfg, 2);
    assert!(
        report.avg_copies_per_item <= 4.0,
        "overhead {} far exceeds K = 2",
        report.avg_copies_per_item
    );
}
