//! White-box walkthrough of the intentional scheme on a hand-crafted
//! deterministic trace, exercising the exact sequence of Fig. 5/6 of
//! the paper: push stops at a relay because the central node's buffer
//! is full, the query reaches the central node, gets broadcast inside
//! the NCL, and the caching node returns the data to the requester.

use dtn_coop_cache::cache::intentional::{
    IntentionalConfig, IntentionalScheme, ProtocolEvent, ResponseStrategy,
};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::Time;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use dtn_coop_cache::trace::trace::Contact;

/// Nodes: 0 = source, 1 = bystander, 2 = hub (central), 3 = requester.
fn walkthrough_trace() -> ContactTrace {
    let mut contacts = Vec::new();
    // Warm-up [0, 1000]: node 2 is clearly the hub.
    for i in 0..10u64 {
        let t = 100 * i;
        contacts.push(Contact::new(
            NodeId(2),
            NodeId(0),
            Time(t + 1),
            Time(t + 20),
        ));
        contacts.push(Contact::new(
            NodeId(2),
            NodeId(1),
            Time(t + 30),
            Time(t + 50),
        ));
        contacts.push(Contact::new(
            NodeId(2),
            NodeId(3),
            Time(t + 60),
            Time(t + 80),
        ));
    }
    contacts.push(Contact::new(NodeId(0), NodeId(1), Time(200), Time(260)));
    contacts.push(Contact::new(NodeId(0), NodeId(1), Time(700), Time(760)));
    // Evaluation phase (after midpoint 10_000):
    contacts.push(Contact::new(
        NodeId(0),
        NodeId(2),
        Time(11_000),
        Time(11_100),
    )); // push meets full central
    contacts.push(Contact::new(
        NodeId(3),
        NodeId(2),
        Time(12_000),
        Time(12_100),
    )); // query reaches central
    contacts.push(Contact::new(
        NodeId(0),
        NodeId(2),
        Time(13_000),
        Time(13_100),
    )); // broadcast reaches cacher; response hops to hub
    contacts.push(Contact::new(
        NodeId(2),
        NodeId(3),
        Time(14_000),
        Time(14_100),
    )); // hub delivers the response
    ContactTrace::new(4, contacts, dtn_coop_cache::core::Duration(20_000))
}

fn run_walkthrough(
    response: ResponseStrategy,
) -> (dtn_coop_cache::sim::Metrics, Vec<ProtocolEvent>) {
    let trace = walkthrough_trace();
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: 1,
        response,
        ..IntentionalConfig::default()
    })
    .enable_event_log();
    let mut sim = Simulator::new(
        &trace,
        scheme,
        SimConfig {
            seed: 5,
            sample_interval: dtn_coop_cache::core::Duration(1_000),
            ..SimConfig::default()
        },
    );
    let mid = trace.midpoint();
    sim.run_until(mid);
    // The central node's buffer is too small for the 1000-byte item;
    // everyone else has plenty of room.
    let capacities = vec![1_000_000, 1_000_000, 500, 1_000_000];
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0,
        path_refresh: None,
    });
    assert_eq!(
        sim.scheme().central_nodes(),
        &[NodeId(2)],
        "the hub must be selected as the central node"
    );
    sim.add_workload(vec![
        WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(0),
                NodeId(0),
                1000,
                Time(10_500),
                dtn_coop_cache::core::Duration(9_000),
            ),
        },
        WorkloadEvent::IssueQuery {
            at: Time(11_500),
            requester: NodeId(3),
            data: DataId(0),
            constraint: dtn_coop_cache::core::Duration(8_000),
        },
    ]);
    sim.run_to_end();
    (sim.metrics().clone(), sim.scheme().events().to_vec())
}

#[test]
fn broadcast_path_delivers_from_non_central_caching_node() {
    // Near-certain response probability makes the walkthrough
    // deterministic for the chosen seed.
    let (m, events) = run_walkthrough(ResponseStrategy::Sigmoid {
        p_min: 0.98,
        p_max: 0.999,
    });
    assert_eq!(m.queries_issued, 1);
    assert_eq!(m.queries_satisfied, 1, "metrics: {m:?}");
    // Delivered at the t = 14 000 contact; issued at 11 500.
    assert_eq!(m.total_delay_secs, 2_500);

    // The event log records the full Fig. 5/6 lifecycle in order:
    // settle at the relay → query at central → broadcast → response →
    // delivery.
    let kind_order: Vec<u8> = events
        .iter()
        .map(|e| match e {
            ProtocolEvent::PushSettled { .. } => 0,
            ProtocolEvent::QueryAtCentral { .. } => 1,
            ProtocolEvent::BroadcastSpread { .. } => 2,
            ProtocolEvent::ResponseSpawned { .. } => 3,
            ProtocolEvent::Delivered { .. } => 4,
            // Epochs are disabled in this walkthrough; no re-elections
            // can appear in the log.
            ProtocolEvent::CentralReelected { .. } => unreachable!("epochs disabled"),
        })
        .collect();
    assert_eq!(kind_order, vec![0, 1, 2, 3, 4], "events: {events:?}");
    assert!(matches!(
        events[0],
        ProtocolEvent::PushSettled {
            node: NodeId(0),
            ncl: 0,
            ..
        }
    ));
    assert!(matches!(
        events[2],
        ProtocolEvent::BroadcastSpread {
            node: NodeId(0),
            ..
        }
    ));
}

#[test]
fn path_aware_response_also_delivers() {
    // Node 0 reaches node 3 only through the hub; the path weight over
    // the remaining ~6 500 s is high given the warm-up contact rates, so
    // the path-aware decision responds too (seeded).
    let (m, _) = run_walkthrough(ResponseStrategy::PathAware);
    assert_eq!(m.queries_satisfied, 1, "metrics: {m:?}");
}

#[test]
fn central_buffer_full_keeps_copy_at_relay() {
    // The same walkthrough, interrogated via cache samples: after the
    // t = 11 000 contact the item must still be cached (at node 0 — the
    // central node cannot hold it), i.e. exactly one copy, not zero and
    // not at the 500-byte buffer.
    let (m, _) = run_walkthrough(ResponseStrategy::Sigmoid {
        p_min: 0.98,
        p_max: 0.999,
    });
    let copies_mid: Vec<_> = m
        .samples
        .iter()
        .filter(|s| s.at > Time(11_000) && s.at < Time(19_000))
        .collect();
    assert!(!copies_mid.is_empty());
    for s in copies_mid {
        assert_eq!(s.copies, 1, "sample {s:?}");
        assert!(s.bytes == 1000);
    }
}
