//! Randomized stress runs checking the intentional scheme's internal
//! invariants (buffer accounting, copy/holder consistency) across many
//! seeds, trace shapes and buffer pressures.

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_coop_cache::cache::replacement::ReplacementKind;
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::NodeId;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator};
use dtn_coop_cache::workload::{Workload, WorkloadConfig};

fn stress_once(
    seed: u64,
    nodes: usize,
    buffer_range: (u64, u64),
    replacement: ReplacementKind,
    ncl_count: usize,
) {
    let trace = SyntheticTraceBuilder::new(nodes)
        .duration(Duration::days(1))
        .target_contacts(300 * nodes as u64)
        .seed(seed)
        .build();
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count,
        replacement,
        ..IntentionalConfig::default()
    });
    let mut sim = Simulator::new(
        &trace,
        scheme,
        SimConfig {
            seed,
            buffer_range,
            ..SimConfig::default()
        },
    );
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..nodes as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0,
        path_refresh: None,
    });
    let workload = Workload::generate(
        nodes,
        &WorkloadConfig {
            mean_lifetime: Duration::hours(4),
            mean_size: 600_000, // large relative to the tight buffers below
            seed,
            ..WorkloadConfig::new((mid, Time(trace.duration().as_secs())))
        },
    );
    sim.add_workload(workload.into_events());

    // Validate repeatedly during the run, not just at the end.
    let end = trace.duration().as_secs();
    for slice in 1..=4u64 {
        sim.run_until(Time(mid.as_secs() + (end - mid.as_secs()) * slice / 4));
        sim.scheme()
            .validate()
            .unwrap_or_else(|e| panic!("seed {seed} {replacement}: {e}"));
    }
    sim.run_to_end();
    sim.scheme().validate().expect("final state");
}

use dtn_coop_cache::core::time::Time;

#[test]
fn knapsack_replacement_under_pressure() {
    for seed in 0..6 {
        stress_once(
            seed,
            14,
            (1_000_000, 2_000_000), // 1-3 items per buffer
            ReplacementKind::UtilityKnapsack,
            3,
        );
    }
}

#[test]
fn traditional_replacements_under_pressure() {
    for (i, kind) in [
        ReplacementKind::Fifo,
        ReplacementKind::Lru,
        ReplacementKind::GreedyDualSize,
    ]
    .into_iter()
    .enumerate()
    {
        stress_once(100 + i as u64, 12, (900_000, 1_500_000), kind, 2);
    }
}

#[test]
fn roomy_buffers_many_ncls() {
    for seed in 0..3 {
        stress_once(
            200 + seed,
            18,
            (50_000_000, 80_000_000),
            ReplacementKind::UtilityKnapsack,
            6,
        );
    }
}
