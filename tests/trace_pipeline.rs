//! Trace toolkit integration: generation → CSV → statistics → NCL
//! selection, across crates.

use dtn_coop_cache::core::graph::ContactGraph;
use dtn_coop_cache::core::ncl::select_central_nodes;
use dtn_coop_cache::core::time::Time;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::trace::io::{read_trace, write_trace};
use dtn_coop_cache::trace::stats::{metric_distribution, TraceStats};
use dtn_coop_cache::trace::TracePreset;

#[test]
fn csv_roundtrip_preserves_every_preset() {
    for preset in TracePreset::ALL {
        let trace = SyntheticTraceBuilder::from_preset(preset)
            .scale(0.02)
            .seed(8)
            .build();
        let mut buf = Vec::new();
        write_trace(&trace, &mut buf).expect("write to Vec");
        let restored = read_trace(&buf[..]).expect("read own output");
        assert_eq!(trace, restored, "{}", preset.name());
    }
}

#[test]
fn stats_match_preset_calibration() {
    let scale = 0.05;
    for preset in TracePreset::ALL {
        let trace = SyntheticTraceBuilder::from_preset(preset)
            .scale(scale)
            .seed(3)
            .build();
        let stats = TraceStats::compute(&trace);
        assert_eq!(stats.nodes, preset.node_count());
        let target = preset.total_contacts() as f64 * scale;
        assert!(
            (stats.contacts as f64 - target).abs() < 0.3 * target,
            "{}: {} contacts vs target {target}",
            preset.name(),
            stats.contacts
        );
    }
}

#[test]
fn ncl_selection_agrees_between_stats_and_core() {
    let trace = SyntheticTraceBuilder::from_preset(TracePreset::Infocom05)
        .scale(0.05)
        .seed(5)
        .build();
    let horizon = TracePreset::Infocom05.ncl_horizon().as_secs_f64();
    // Via the stats helper…
    let dist = metric_distribution(&trace, horizon);
    // …and via the core API directly.
    let end = Time(trace.duration().as_secs());
    let graph = ContactGraph::from_rate_table(&trace.rate_table(end), end);
    let top = select_central_nodes(&graph, 4, horizon);
    let stats_top: Vec<_> = dist.iter().take(4).map(|s| s.node).collect();
    let core_top: Vec<_> = top.iter().map(|s| s.node).collect();
    assert_eq!(stats_top, core_top);
}

#[test]
fn metric_distribution_shows_hubs() {
    // The Fig. 4 property on the long heterogeneous traces: the top
    // node clearly beats the median node.
    for preset in [TracePreset::MitReality, TracePreset::Ucsd] {
        let trace = SyntheticTraceBuilder::from_preset(preset)
            .scale(0.05)
            .seed(7)
            .build();
        let dist = metric_distribution(&trace, preset.ncl_horizon().as_secs_f64());
        let max = dist[0].metric;
        let median = dist[dist.len() / 2].metric;
        assert!(
            max > 1.3 * median.max(1e-6),
            "{}: max {max:.3} vs median {median:.3} is not skewed",
            preset.name()
        );
    }
}
