//! Property tests on the simulation engine: under arbitrary (valid)
//! workloads and traces, the metrics must stay internally consistent.

use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::{Duration, Time};
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use proptest::prelude::*;

fn arbitrary_workload(nodes: u32, span: u64) -> impl Strategy<Value = Vec<WorkloadEvent>> {
    let item = (0..nodes, 1u64..4_000_000, 0..span / 2, 1u64..span).prop_map(
        move |(src, size, at, life)| WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(0), // rewritten below to be unique
                NodeId(src),
                size,
                Time(at),
                Duration(life),
            ),
        },
    );
    let query =
        (0..nodes, 0u64..30, 0..span, 1u64..span).prop_map(move |(req, data, at, constraint)| {
            WorkloadEvent::IssueQuery {
                at: Time(at),
                requester: NodeId(req),
                data: DataId(data),
                constraint: Duration(constraint),
            }
        });
    prop::collection::vec(prop_oneof![item, query], 0..40).prop_map(|mut events| {
        // Make item ids unique and events time-ordered.
        let mut next_id = 0u64;
        for e in &mut events {
            if let WorkloadEvent::GenerateData { item } = e {
                *item = DataItem::new(
                    DataId(next_id),
                    item.source,
                    item.size,
                    item.created_at,
                    item.expires_at() - item.created_at,
                );
                next_id += 1;
            }
        }
        events.sort_by_key(|e| e.at());
        events
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every scheme and arbitrary workloads: counters stay
    /// consistent — satisfied ≤ issued, one recorded delay per
    /// satisfied query, delays within constraints, generated counts
    /// match, and success ratio is a probability.
    #[test]
    fn metrics_are_internally_consistent(
        events in arbitrary_workload(10, 40_000),
        scheme_idx in 0usize..6,
        seed in 0u64..1000,
    ) {
        let trace = SyntheticTraceBuilder::new(10)
            .duration(Duration(80_000))
            .target_contacts(1_500)
            .seed(seed)
            .build();
        let kind = SchemeKind::ALL_WITH_BOUNDS[scheme_idx];
        let cfg = ExperimentConfig {
            ncl_count: 2,
            buffer_range: (4_000_000, 8_000_000),
            ..ExperimentConfig::default()
        };
        let scheme = dtn_coop_cache::cache::experiment::build_scheme(kind, &cfg);
        let mut sim = Simulator::new(
            &trace,
            scheme,
            SimConfig { seed, buffer_range: cfg.buffer_range, ..SimConfig::default() },
        );
        // Configure at time zero so the whole span carries workload.
        let rt = sim.rate_table().clone();
        let capacities: Vec<u64> =
            (0..10u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
        sim.scheme_mut().configure(&dtn_coop_cache::cache::NetworkSetup {
            rate_table: &rt,
            now: Time::ZERO,
            capacities,
            horizon: 3600.0,
            path_refresh: None,
        });
        let generated = events
            .iter()
            .filter(|e| matches!(e, WorkloadEvent::GenerateData { .. }))
            .count() as u64;
        let issued = events
            .iter()
            .filter(|e| matches!(e, WorkloadEvent::IssueQuery { .. }))
            .count() as u64;
        sim.add_workload(events);
        let m = sim.run_to_end().clone();

        prop_assert_eq!(m.data_generated, generated);
        prop_assert_eq!(m.queries_issued, issued);
        prop_assert!(m.queries_satisfied <= m.queries_issued);
        prop_assert_eq!(m.delays_secs.len() as u64, m.queries_satisfied);
        prop_assert_eq!(
            m.delays_secs.iter().sum::<u64>(),
            m.total_delay_secs
        );
        prop_assert!((0.0..=1.0).contains(&m.success_ratio()));
        // Every sample is well-formed.
        for s in &m.samples {
            prop_assert!(s.copies >= s.distinct || s.distinct == 0 || s.copies >= 1);
        }
    }
}
