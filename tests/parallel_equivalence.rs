//! Differential guarantee of the windowed parallel executor.
//!
//! `SimConfig::threads > 1` switches the engine to batched planning over
//! endpoint-disjoint contacts with a trace-order commit phase. The
//! contract is strict: for any trace, any workload, audits on and epochs
//! firing, a parallel run must reproduce the serial run **bit for bit**
//! — metrics, rate tables, audit sweeps and the probe event stream. The
//! single permitted difference is the extra `parallel_window` planning
//! events a parallel run emits; filtering those out must leave the
//! serial stream exactly.
//!
//! Covered here over randomized configurations (proptest) and both
//! contact sources:
//!
//! - [`ContactTrace`]-backed runs at 2 and 4 threads, dense oracle;
//! - hop-bounded sparse-oracle runs (the city-scale configuration);
//! - [`StreamSource`]-backed runs, which exercise the windowed
//!   executor's incremental peek/advance path.

use std::cell::RefCell;
use std::rc::Rc;

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::{Duration, Time};
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, StreamSource, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use dtn_coop_cache::sim::metrics::Metrics;
use dtn_coop_cache::sim::probe::{ProbeEvent, RecordingProbe};
use dtn_coop_cache::trace::synthetic::SyntheticTraceBuilder;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Params {
    nodes: usize,
    seed: u64,
    target_contacts: u64,
    sparse_oracle: bool,
}

fn builder(p: &Params) -> SyntheticTraceBuilder {
    SyntheticTraceBuilder::new(p.nodes)
        .duration(Duration::days(1))
        .target_contacts(p.target_contacts)
        .communities(2)
        .seed(p.seed)
}

fn sim_config(p: &Params, threads: usize) -> SimConfig {
    SimConfig {
        seed: p.seed ^ 0x5A5A,
        threads,
        buffer_range: (128_000, 512_000),
        audit: true,
        epoch_interval: Some(Duration::hours(3)),
        sample_interval: Duration::hours(2),
        contact_loss_probability: 0.05,
        ..SimConfig::default()
    }
}

fn scheme(p: &Params) -> IntentionalScheme {
    IntentionalScheme::new(IntentionalConfig {
        ncl_count: 3,
        bounded_reach: if p.sparse_oracle { Some((4, 64)) } else { None },
        ..IntentionalConfig::default()
    })
}

fn workload(p: &Params, mid: Time) -> Vec<WorkloadEvent> {
    let nodes = p.nodes as u64;
    let items = 12u64;
    let mut events = Vec::new();
    for i in 0..items {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 5 % nodes) as u32),
                1_000 + 100 * i,
                mid + Duration::minutes(7 * i),
                Duration::hours(20),
            ),
        });
    }
    for q in 0..40u64 {
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(30 + 11 * q),
            requester: NodeId(((q * 7 + 3) % nodes) as u32),
            data: DataId(q * q % items),
            constraint: Duration::hours(6),
        });
    }
    events
}

/// One full run (warm-up, NCL election, workload) at the given thread
/// count; returns everything observable.
fn run(p: &Params, threads: usize, streaming: bool) -> (Metrics, Vec<ProbeEvent>, u64) {
    let b = builder(p);
    let mid = Time(Duration::days(1).as_secs() / 2);
    let trace = b.build();
    let cfg = sim_config(p, threads);

    macro_rules! drive {
        ($sim:expr) => {{
            let mut sim = $sim;
            sim.run_until(mid);
            let capacities: Vec<u64> = (0..p.nodes as u32)
                .map(|n| sim.buffer_capacity(NodeId(n)))
                .collect();
            let rate_table = sim.rate_table().clone();
            sim.scheme_mut().configure(&NetworkSetup {
                rate_table: &rate_table,
                now: mid,
                capacities,
                horizon: 3600.0 * 8.0,
                path_refresh: None,
            });
            let recorder = Rc::new(RefCell::new(RecordingProbe::new()));
            sim.set_probe(Box::new(Rc::clone(&recorder)));
            sim.add_workload(workload(p, mid));
            sim.run_to_end();
            let report = sim.audit_report().expect("audit enabled");
            assert!(report.is_clean(), "threads={threads}: {}", report.summary());
            drop(sim.take_probe());
            let probe = Rc::try_unwrap(recorder)
                .ok()
                .expect("engine returned its probe handle")
                .into_inner();
            (
                sim.metrics().clone(),
                probe.events().to_vec(),
                sim.rate_table().total_contacts(),
            )
        }};
    }

    if streaming {
        drive!(Simulator::from_source(
            StreamSource::from_synthetic(b.stream()),
            scheme(p),
            cfg,
        ))
    } else {
        drive!(Simulator::new(&trace, scheme(p), cfg))
    }
}

/// Drops the planning events a parallel run is allowed to add.
fn without_planning(events: Vec<ProbeEvent>) -> Vec<ProbeEvent> {
    events
        .into_iter()
        .filter(|e| !matches!(e, ProbeEvent::ParallelWindow { .. }))
        .collect()
}

fn assert_equivalent(p: &Params, streaming: bool, thread_counts: &[usize]) {
    let (serial_m, serial_events, serial_contacts) = run(p, 1, streaming);
    assert!(
        !serial_events
            .iter()
            .any(|e| matches!(e, ProbeEvent::ParallelWindow { .. })),
        "serial runs must not emit planning events"
    );
    for &threads in thread_counts {
        let (m, events, contacts) = run(p, threads, streaming);
        let planned = events
            .iter()
            .filter(|e| matches!(e, ProbeEvent::ParallelWindow { .. }))
            .count();
        assert!(
            planned > 0,
            "threads={threads}: a parallel run over {} contacts formed no windows",
            serial_contacts
        );
        assert_eq!(serial_m, m, "{p:?} threads={threads}: metrics diverged");
        assert_eq!(
            serial_events,
            without_planning(events),
            "{p:?} threads={threads}: probe stream diverged"
        );
        assert_eq!(serial_contacts, contacts);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Trace-backed runs, dense oracle: serial vs 2 and 4 threads.
    #[test]
    fn trace_runs_are_thread_count_invariant(
        nodes in 12usize..=24,
        seed in 0u64..500,
        target_contacts in 1_500u64..=3_000,
    ) {
        let p = Params { nodes, seed, target_contacts, sparse_oracle: false };
        assert_equivalent(&p, false, &[2, 4]);
    }

    /// The hop-bounded sparse oracle (city-scale configuration) obeys
    /// the same contract: its direct-mapped reach cache and staged
    /// sparse priming must not leak thread-count dependence.
    #[test]
    fn sparse_oracle_runs_are_thread_count_invariant(
        nodes in 12usize..=20,
        seed in 0u64..500,
    ) {
        let p = Params { nodes, seed, target_contacts: 2_000, sparse_oracle: true };
        assert_equivalent(&p, false, &[4]);
    }

    /// Streaming-source runs: the windowed gather loop peeks/advances
    /// an unmaterialized source and must still match its own serial run.
    #[test]
    fn stream_runs_are_thread_count_invariant(
        nodes in 12usize..=20,
        seed in 0u64..500,
    ) {
        let p = Params { nodes, seed, target_contacts: 2_000, sparse_oracle: false };
        assert_equivalent(&p, true, &[2, 4]);
    }
}

/// A fixed deep configuration pinned outside proptest so CI exercises it
/// on every run: both sources, both oracles, 2 and 4 threads.
#[test]
fn pinned_dense_and_sparse_equivalence() {
    for sparse_oracle in [false, true] {
        for streaming in [false, true] {
            let p = Params {
                nodes: 18,
                seed: 42,
                target_contacts: 2_500,
                sparse_oracle,
            };
            assert_equivalent(&p, streaming, &[2, 4]);
        }
    }
}
