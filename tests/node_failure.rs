//! Robustness: what happens when nodes fail mid-run?
//!
//! The paper selects NCLs once, before data access, and assumes stable
//! contact patterns (§IV-A). These tests probe the failure modes that
//! assumption hides: a central node dying mid-evaluation should degrade
//! the intentional scheme gracefully (other NCLs keep serving), never
//! crash it.

use dtn_coop_cache::core::ids::NodeId;
use dtn_coop_cache::core::time::Time;
use dtn_coop_cache::prelude::*;

fn base_trace(seed: u64) -> ContactTrace {
    SyntheticTraceBuilder::new(20)
        .duration(Duration::days(2))
        .target_contacts(8_000)
        .edge_density(0.3)
        .seed(seed)
        .build()
}

fn cfg(k: usize) -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: k,
        mean_data_lifetime: Duration::hours(8),
        mean_data_size: 1 << 20,
        buffer_range: (16 << 20, 48 << 20),
        ..ExperimentConfig::default()
    }
}

/// Finds the central nodes a run would select, so we can kill one.
fn selected_centrals(trace: &ContactTrace, k: usize) -> Vec<NodeId> {
    run_experiment(trace, SchemeKind::Intentional, &cfg(k), 1).central_nodes
}

#[test]
fn central_node_failure_degrades_gracefully() {
    let trace = base_trace(21);
    let centrals = selected_centrals(&trace, 3);
    // Kill the top central node right when the workload starts.
    let failed = trace.fail_node_after(centrals[0], trace.midpoint());

    let mut healthy_total = 0.0;
    let mut failed_total = 0.0;
    for seed in 0..3 {
        healthy_total +=
            run_experiment(&trace, SchemeKind::Intentional, &cfg(3), seed).success_ratio;
        failed_total +=
            run_experiment(&failed, SchemeKind::Intentional, &cfg(3), seed).success_ratio;
    }
    // Degradation is expected…
    assert!(
        failed_total <= healthy_total + 0.05,
        "killing a central node should not help: {failed_total:.3} vs {healthy_total:.3}"
    );
    // …but not collapse: the remaining NCLs keep answering queries.
    assert!(
        failed_total > 0.25 * healthy_total,
        "losing 1 of 3 NCLs must not collapse the scheme: {failed_total:.3} vs {healthy_total:.3}"
    );
}

#[test]
fn single_ncl_is_fragile_compared_to_many() {
    // The flip side of Fig. 13's K = 1 point: with one NCL, killing it
    // costs more than killing one of three.
    let trace = base_trace(22);
    let c1 = selected_centrals(&trace, 1);
    let failed = trace.fail_node_after(c1[0], trace.midpoint());

    let mut drop_k1 = 0.0;
    let mut drop_k3 = 0.0;
    for seed in 0..3 {
        let healthy1 = run_experiment(&trace, SchemeKind::Intentional, &cfg(1), seed).success_ratio;
        let failed1 = run_experiment(&failed, SchemeKind::Intentional, &cfg(1), seed).success_ratio;
        drop_k1 += healthy1 - failed1;
        let healthy3 = run_experiment(&trace, SchemeKind::Intentional, &cfg(3), seed).success_ratio;
        let failed3 = run_experiment(&failed, SchemeKind::Intentional, &cfg(3), seed).success_ratio;
        drop_k3 += healthy3 - failed3;
    }
    assert!(
        drop_k1 >= drop_k3 - 0.05,
        "K=1 must be at least as fragile as K=3: drop {drop_k1:.3} vs {drop_k3:.3}"
    );
}

#[test]
fn failing_a_leaf_node_is_nearly_free() {
    let trace = base_trace(23);
    // Pick the least-active node.
    let counts = trace.node_contact_counts();
    let leaf = NodeId(
        counts
            .iter()
            .enumerate()
            .min_by_key(|(_, &c)| c)
            .map(|(i, _)| i as u32)
            .expect("non-empty"),
    );
    let failed = trace.fail_node_after(leaf, Time(0));
    let healthy = run_experiment(&trace, SchemeKind::Intentional, &cfg(3), 4).success_ratio;
    let after = run_experiment(&failed, SchemeKind::Intentional, &cfg(3), 4).success_ratio;
    assert!(
        (healthy - after).abs() < 0.15,
        "a leaf node's failure should barely matter: {healthy:.3} vs {after:.3}"
    );
}
