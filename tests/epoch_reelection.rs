//! Online NCL re-election on a trace with a mid-run mobility shift.
//!
//! The regime-shift trace reverses the node identities at its midpoint:
//! the hubs the warm-up phase elects as Network Central Locations go
//! quiet exactly when the workload starts, so a frozen central set is
//! maximally stale. With `SimConfig::epoch_interval` set, the
//! intentional scheme periodically rebuilds the contact graph from the
//! live rate table, re-runs NCL selection, and migrates settled cache
//! copies from demoted centrals toward the newly elected ones (§V-A
//! relay rule on subsequent contacts). That adaptivity must (a) change
//! at least one central node and (b) strictly beat the frozen-NCL run
//! on successful-delivery ratio at the same seed.

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme, ReelectionStats};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::Duration;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use dtn_coop_cache::sim::metrics::Metrics;
use dtn_coop_cache::trace::synthetic::regime_shift_trace;
use dtn_coop_cache::trace::trace::ContactTrace;

const NODES: usize = 22;
const SEED: u64 = 11;

struct RunOutcome {
    metrics: Metrics,
    initial_centrals: Vec<NodeId>,
    final_centrals: Vec<NodeId>,
    stats: ReelectionStats,
}

/// Data in the early second half, queries spread across the rest of it.
fn workload(trace: &ContactTrace) -> Vec<WorkloadEvent> {
    let mid = trace.midpoint();
    let items = 20u64;
    let mut events = Vec::new();
    for i in 0..items {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 5 % NODES as u64) as u32),
                1_000,
                mid + Duration::minutes(10 * i),
                Duration::hours(22),
            ),
        });
    }
    for q in 0..90u64 {
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(60 + 13 * q),
            requester: NodeId(((q * 7 + 3) % NODES as u64) as u32),
            data: DataId(q * q % items),
            constraint: Duration::hours(8),
        });
    }
    events
}

fn run(epoch_interval: Option<Duration>) -> RunOutcome {
    let trace = regime_shift_trace(NODES, 4_000, SEED, Duration::days(1));
    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: 3,
        ..IntentionalConfig::default()
    });
    let mut sim = Simulator::new(
        &trace,
        scheme,
        SimConfig {
            seed: SEED,
            buffer_range: (256_000, 512_000),
            epoch_interval,
            audit: true,
            ..SimConfig::default()
        },
    );
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..NODES as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: 3600.0 * 8.0,
        path_refresh: None,
    });
    let initial_centrals = sim.scheme().central_nodes().to_vec();
    sim.add_workload(workload(&trace));
    sim.run_to_end();
    let report = sim.audit_report().expect("audit enabled");
    assert!(report.is_clean(), "{}", report.summary());
    assert!(report.sweeps() > 0, "audit never swept");
    RunOutcome {
        metrics: sim.metrics().clone(),
        initial_centrals,
        final_centrals: sim.scheme().central_nodes().to_vec(),
        stats: sim.scheme().reelection_stats(),
    }
}

#[test]
fn reelection_changes_centrals_and_beats_frozen_ncls() {
    let frozen = run(None);
    let adaptive = run(Some(Duration::hours(2)));

    // Epochs disabled: nothing fires, nothing moves.
    assert_eq!(frozen.stats, ReelectionStats::default());
    assert_eq!(frozen.final_centrals, frozen.initial_centrals);

    // Epochs enabled: elections ran and at least one central changed.
    assert!(adaptive.stats.elections > 0, "no epochs fired");
    assert!(
        adaptive.stats.central_changes >= 1,
        "the regime shift must demote at least one warm-up central: {:?}",
        adaptive.stats
    );
    assert_ne!(
        adaptive.final_centrals, adaptive.initial_centrals,
        "the central set must differ after the mobility shift"
    );
    // Both runs share the warm-up, so they start from the same set.
    assert_eq!(adaptive.initial_centrals, frozen.initial_centrals);

    eprintln!(
        "adaptive ratio {:.3} (stats {:?}) vs frozen {:.3}",
        adaptive.metrics.success_ratio(),
        adaptive.stats,
        frozen.metrics.success_ratio()
    );

    // The adaptive run answers strictly more queries at equal seed.
    assert_eq!(
        adaptive.metrics.queries_issued,
        frozen.metrics.queries_issued
    );
    assert!(
        adaptive.metrics.success_ratio() > frozen.metrics.success_ratio(),
        "adaptive {:.3} must beat frozen {:.3}",
        adaptive.metrics.success_ratio(),
        frozen.metrics.success_ratio()
    );
}

#[test]
fn migration_only_moves_copies_when_centrals_change() {
    let adaptive = run(Some(Duration::hours(2)));
    if adaptive.stats.central_changes == 0 {
        assert_eq!(adaptive.stats.migrated_copies, 0);
        assert_eq!(adaptive.stats.migrated_bytes, 0);
    } else {
        // Bytes only accrue alongside copies.
        assert!(adaptive.stats.migrated_bytes >= adaptive.stats.migrated_copies);
    }
}
