//! Robustness under radio-level contact loss: performance must degrade
//! monotonically-ish with the loss rate, never crash, and the loss must
//! be invisible to the protocol (no rate-table pollution).

use dtn_coop_cache::cache::experiment::build_scheme;
use dtn_coop_cache::cache::NetworkSetup;
use dtn_coop_cache::core::ids::NodeId;
use dtn_coop_cache::core::time::Time;
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator};
use dtn_coop_cache::workload::{Workload, WorkloadConfig};

fn run_with_loss(loss: f64, seed: u64) -> dtn_coop_cache::sim::Metrics {
    let trace = SyntheticTraceBuilder::new(18)
        .duration(Duration::days(2))
        .target_contacts(9_000)
        .edge_density(0.3)
        .seed(31)
        .build();
    let cfg = ExperimentConfig {
        ncl_count: 3,
        mean_data_lifetime: Duration::hours(8),
        mean_data_size: 1 << 20,
        buffer_range: (16 << 20, 48 << 20),
        ..ExperimentConfig::default()
    };
    let scheme = build_scheme(SchemeKind::Intentional, &cfg);
    let mut sim = Simulator::new(
        &trace,
        scheme,
        SimConfig {
            seed,
            buffer_range: cfg.buffer_range,
            contact_loss_probability: loss,
            ..SimConfig::default()
        },
    );
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..18u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0 * 4.0,
        path_refresh: None,
    });
    let workload = Workload::generate(
        18,
        &WorkloadConfig {
            mean_lifetime: Duration::hours(8),
            mean_size: 1 << 20,
            seed,
            ..WorkloadConfig::new((mid, Time(trace.duration().as_secs())))
        },
    );
    sim.add_workload(workload.into_events());
    sim.run_to_end();
    sim.metrics().clone()
}

#[test]
fn heavy_contact_loss_hurts_but_never_breaks() {
    let mut prev_satisfied = u64::MAX;
    for loss in [0.0, 0.5, 0.9] {
        let mut satisfied = 0;
        for seed in 0..3 {
            let m = run_with_loss(loss, seed);
            assert!(m.queries_satisfied <= m.queries_issued);
            satisfied += m.queries_satisfied;
        }
        assert!(
            satisfied <= prev_satisfied.saturating_add(2),
            "loss {loss}: {satisfied} satisfied, more than at lower loss"
        );
        prev_satisfied = satisfied;
    }
}

#[test]
fn lost_contacts_never_reach_the_rate_table() {
    let m = run_with_loss(0.3, 1);
    assert!(m.contacts_lost > 0);
    // Satisfied queries still happen at 30% loss.
    assert!(m.queries_issued > 0);
}
