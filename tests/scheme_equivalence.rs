//! Differential test: the indexed-queue intentional caching engine must
//! be indistinguishable from the retain-sweep reference implementation.
//!
//! `IntentionalScheme` indexes pending pulls/broadcasts/responses and
//! push copies per carrier node, garbage-collects expirations from
//! heaps, reuses knapsack scratch buffers and skips provably-empty §V-D
//! exchanges via dirty generations. `ReferenceIntentionalScheme` keeps
//! the original global vectors and full retain sweeps. Both must make
//! the same `try_transmit` calls in the same order and draw the same
//! RNG values, so every run must produce bit-identical `Metrics` —
//! asserted here with exact equality across randomized traces,
//! workloads and configurations.

use dtn_coop_cache::cache::experiment::{run_experiment, run_experiment_with, ExperimentConfig};
use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme, ResponseStrategy};
use dtn_coop_cache::cache::reference::ReferenceIntentionalScheme;
use dtn_coop_cache::cache::replacement::ReplacementKind;
use dtn_coop_cache::cache::routing::ForwardingStrategy;
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup, SchemeKind};
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::Duration;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use dtn_coop_cache::sim::metrics::Metrics;
use dtn_coop_cache::trace::synthetic::SyntheticTraceBuilder;
use dtn_coop_cache::trace::trace::ContactTrace;

use proptest::prelude::*;

fn trace_with(nodes: usize, contacts: u64, seed: u64) -> ContactTrace {
    SyntheticTraceBuilder::new(nodes)
        .duration(Duration::days(2))
        .target_contacts(contacts)
        .seed(seed)
        .build()
}

/// Runs one scheme through the standard warm-up → configure → workload
/// protocol and returns its metrics plus per-NCL query load. Every run
/// executes with the invariant audit enabled and must come back clean.
fn run_one<S: CachingScheme>(
    trace: &ContactTrace,
    scheme: S,
    events: Vec<WorkloadEvent>,
    sim_cfg: SimConfig,
) -> (Metrics, Vec<u64>) {
    let sim_cfg = SimConfig {
        audit: true,
        ..sim_cfg
    };
    let mut sim = Simulator::new(trace, scheme, sim_cfg);
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: 7200.0,
        path_refresh: None,
    };
    sim.scheme_mut().configure(&setup);
    sim.add_workload(events);
    sim.run_to_end();
    let report = sim.audit_report().expect("audit enabled");
    assert!(report.is_clean(), "{}", report.summary());
    let load = sim.scheme().ncl_query_load().to_vec();
    (sim.metrics().clone(), load)
}

/// Asserts the optimized and reference schemes agree bit-for-bit on one
/// (trace, config, workload, seed) combination.
fn assert_equivalent(
    trace: &ContactTrace,
    cfg: &IntentionalConfig,
    events: &[WorkloadEvent],
    sim_cfg: &SimConfig,
) {
    let (fast, fast_load) = run_one(
        trace,
        IntentionalScheme::new(cfg.clone()),
        events.to_vec(),
        sim_cfg.clone(),
    );
    let (reference, ref_load) = run_one(
        trace,
        ReferenceIntentionalScheme::new(cfg.clone()),
        events.to_vec(),
        sim_cfg.clone(),
    );
    assert_eq!(fast, reference, "metrics diverged (cfg {cfg:?})");
    assert_eq!(fast_load, ref_load, "NCL query load diverged");
}

/// A mixed workload: `items` data items spread over the second half of
/// the trace, then `queries` Zipf-ish queries against them.
fn mixed_events(
    trace: &ContactTrace,
    nodes: u32,
    items: u64,
    queries: u64,
    size: u64,
) -> Vec<WorkloadEvent> {
    let mid = trace.midpoint();
    let life = Duration::hours(20);
    let mut events = Vec::new();
    for i in 0..items {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 7 % u64::from(nodes)) as u32),
                size,
                mid + Duration::minutes(3 * i),
                life,
            ),
        });
    }
    for q in 0..queries {
        // Zipf-ish skew: low data ids are queried more often.
        let data = DataId(q * q % items.max(1));
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(30 + 11 * q),
            requester: NodeId(((q * 5 + 2) % u64::from(nodes)) as u32),
            data,
            constraint: Duration::hours(10),
        });
    }
    events
}

#[test]
fn default_config_is_equivalent() {
    let trace = trace_with(16, 6_000, 21);
    let cfg = IntentionalConfig {
        ncl_count: 3,
        ..IntentionalConfig::default()
    };
    let events = mixed_events(&trace, 16, 12, 30, 1_000);
    let sim_cfg = SimConfig {
        seed: 21,
        ..SimConfig::default()
    };
    assert_equivalent(&trace, &cfg, &events, &sim_cfg);
}

#[test]
fn replacement_pressure_is_equivalent() {
    // Tight buffers: evictions, settles-on-full and §V-D moves all fire.
    let trace = trace_with(14, 5_000, 22);
    let cfg = IntentionalConfig {
        ncl_count: 2,
        ..IntentionalConfig::default()
    };
    let events = mixed_events(&trace, 14, 14, 40, 450);
    let sim_cfg = SimConfig {
        buffer_range: (1_000, 1_400),
        seed: 22,
        ..SimConfig::default()
    };
    assert_equivalent(&trace, &cfg, &events, &sim_cfg);
}

#[test]
fn traditional_policies_are_equivalent() {
    let trace = trace_with(12, 4_000, 23);
    for replacement in [
        ReplacementKind::Fifo,
        ReplacementKind::Lru,
        ReplacementKind::GreedyDualSize,
    ] {
        let cfg = IntentionalConfig {
            ncl_count: 2,
            replacement,
            ..IntentionalConfig::default()
        };
        let events = mixed_events(&trace, 12, 10, 25, 600);
        let sim_cfg = SimConfig {
            buffer_range: (1_500, 2_000),
            seed: 23,
            ..SimConfig::default()
        };
        assert_equivalent(&trace, &cfg, &events, &sim_cfg);
    }
}

#[test]
fn path_aware_response_is_equivalent() {
    let trace = trace_with(14, 5_000, 24);
    let cfg = IntentionalConfig {
        ncl_count: 3,
        response: ResponseStrategy::PathAware,
        ..IntentionalConfig::default()
    };
    let events = mixed_events(&trace, 14, 10, 30, 800);
    let sim_cfg = SimConfig {
        seed: 24,
        ..SimConfig::default()
    };
    assert_equivalent(&trace, &cfg, &events, &sim_cfg);
}

#[test]
fn response_routing_variants_are_equivalent() {
    let trace = trace_with(12, 4_000, 25);
    for routing in [
        ForwardingStrategy::Direct,
        ForwardingStrategy::Epidemic,
        ForwardingStrategy::SprayAndWait { initial_copies: 4 },
    ] {
        let cfg = IntentionalConfig {
            ncl_count: 2,
            response_routing: routing,
            ..IntentionalConfig::default()
        };
        let events = mixed_events(&trace, 12, 8, 24, 700);
        let sim_cfg = SimConfig {
            seed: 25,
            ..SimConfig::default()
        };
        assert_equivalent(&trace, &cfg, &events, &sim_cfg);
    }
}

#[test]
fn deterministic_selection_is_equivalent() {
    // probabilistic_selection = false exercises solve_in / Selection.
    let trace = trace_with(12, 4_000, 26);
    let cfg = IntentionalConfig {
        ncl_count: 2,
        probabilistic_selection: false,
        ..IntentionalConfig::default()
    };
    let events = mixed_events(&trace, 12, 12, 30, 500);
    let sim_cfg = SimConfig {
        buffer_range: (1_200, 1_600),
        seed: 26,
        ..SimConfig::default()
    };
    assert_equivalent(&trace, &cfg, &events, &sim_cfg);
}

#[test]
fn full_experiment_pipeline_is_equivalent() {
    // The generated (Zipf) workload through run_experiment[_with]: the
    // optimized scheme inside the real experiment runner must match the
    // reference given the same seed.
    let trace = trace_with(16, 5_000, 27);
    let cfg = ExperimentConfig {
        ncl_count: 3,
        mean_data_lifetime: Duration::hours(8),
        mean_data_size: 1 << 20,
        buffer_range: (8 << 20, 16 << 20),
        ..ExperimentConfig::default()
    };
    for seed in [1u64, 9] {
        let fast = run_experiment(&trace, SchemeKind::Intentional, &cfg, seed);
        let reference = run_experiment_with(
            &trace,
            SchemeKind::Intentional,
            Box::new(ReferenceIntentionalScheme::new(IntentionalConfig {
                ncl_count: cfg.ncl_count,
                response: cfg.response,
                replacement: cfg.replacement,
                probabilistic_selection: cfg.probabilistic_selection,
                response_routing: cfg.response_routing,
                ncl_selection: cfg.ncl_selection,
                ..IntentionalConfig::default()
            })),
            &cfg,
            seed,
        );
        assert_eq!(fast, reference, "seed {seed}");
    }
}

fn arb_replacement() -> impl Strategy<Value = ReplacementKind> {
    prop_oneof![
        Just(ReplacementKind::UtilityKnapsack),
        Just(ReplacementKind::Fifo),
        Just(ReplacementKind::Lru),
        Just(ReplacementKind::GreedyDualSize),
    ]
}

fn arb_response() -> impl Strategy<Value = ResponseStrategy> {
    prop_oneof![
        Just(ResponseStrategy::default()),
        Just(ResponseStrategy::PathAware),
        Just(ResponseStrategy::Sigmoid {
            p_min: 0.2,
            p_max: 0.95
        }),
    ]
}

fn arb_routing() -> impl Strategy<Value = ForwardingStrategy> {
    prop_oneof![
        Just(ForwardingStrategy::Greedy),
        Just(ForwardingStrategy::Direct),
        Just(ForwardingStrategy::Epidemic),
        Just(ForwardingStrategy::SprayAndWait { initial_copies: 3 }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized traces, workloads and scheme configurations: the
    /// indexed engine must reproduce the reference bit-for-bit.
    #[test]
    fn random_runs_are_equivalent(
        trace_seed in 0u64..1_000,
        sim_seed in 0u64..1_000,
        ncl_count in 1usize..=4,
        replacement in arb_replacement(),
        response in arb_response(),
        routing in arb_routing(),
        probabilistic in any::<bool>(),
        tight in any::<bool>(),
        items in 4u64..14,
        queries in 8u64..32,
    ) {
        let trace = trace_with(12, 3_000, trace_seed);
        let cfg = IntentionalConfig {
            ncl_count,
            replacement,
            response,
            response_routing: routing,
            probabilistic_selection: probabilistic,
            ..IntentionalConfig::default()
        };
        let size = if tight { 500 } else { 1_000 };
        let events = mixed_events(&trace, 12, items, queries, size);
        let sim_cfg = SimConfig {
            buffer_range: if tight { (1_100, 1_500) } else { (64_000, 96_000) },
            seed: sim_seed,
            ..SimConfig::default()
        };
        let (fast, fast_load) = run_one(
            &trace,
            IntentionalScheme::new(cfg.clone()),
            events.clone(),
            sim_cfg.clone(),
        );
        let (reference, ref_load) = run_one(
            &trace,
            ReferenceIntentionalScheme::new(cfg),
            events,
            sim_cfg,
        );
        prop_assert_eq!(fast, reference);
        prop_assert_eq!(fast_load, ref_load);
    }
}

#[test]
fn event_streams_are_equivalent() {
    // Beyond bit-identical metrics, both implementations must narrate
    // the run identically: the same ProtocolEvent milestones, in the
    // same order, with the same timestamps and payloads.
    use dtn_coop_cache::cache::intentional::ProtocolEvent;

    fn run_logged<S: CachingScheme>(
        trace: &ContactTrace,
        scheme: S,
        events: Vec<WorkloadEvent>,
        sim_cfg: SimConfig,
        extract: impl FnOnce(&S) -> Vec<ProtocolEvent>,
    ) -> Vec<ProtocolEvent> {
        let sim_cfg = SimConfig {
            audit: true,
            ..sim_cfg
        };
        let mut sim = Simulator::new(trace, scheme, sim_cfg);
        let mid = trace.midpoint();
        sim.run_until(mid);
        let capacities: Vec<u64> = (0..trace.node_count() as u32)
            .map(|n| sim.buffer_capacity(NodeId(n)))
            .collect();
        let rate_table = sim.rate_table().clone();
        let setup = NetworkSetup {
            rate_table: &rate_table,
            now: mid,
            capacities,
            horizon: 7200.0,
            path_refresh: None,
        };
        sim.scheme_mut().configure(&setup);
        sim.add_workload(events);
        sim.run_to_end();
        let report = sim.audit_report().expect("audit enabled");
        assert!(report.is_clean(), "{}", report.summary());
        extract(sim.scheme())
    }

    let trace = trace_with(14, 5_000, 29);
    let cfg = IntentionalConfig {
        ncl_count: 3,
        ..IntentionalConfig::default()
    };
    let events = mixed_events(&trace, 14, 12, 30, 800);
    let sim_cfg = SimConfig {
        seed: 29,
        ..SimConfig::default()
    };
    let fast = run_logged(
        &trace,
        IntentionalScheme::new(cfg.clone()).enable_event_log(),
        events.clone(),
        sim_cfg.clone(),
        |s| s.events().to_vec(),
    );
    let reference = run_logged(
        &trace,
        ReferenceIntentionalScheme::new(cfg).enable_event_log(),
        events,
        sim_cfg,
        |s| s.events().to_vec(),
    );
    assert!(
        !fast.is_empty(),
        "expected protocol milestones on a busy trace"
    );
    assert_eq!(fast, reference, "protocol event streams diverged");
}

#[test]
fn long_run_with_expirations_is_equivalent() {
    // Short lifetimes force the expiry-heap GC paths (data, pending
    // messages, responded memos) to fire repeatedly mid-run.
    let trace = trace_with(14, 6_000, 28);
    let mid = trace.midpoint();
    let mut events = Vec::new();
    for i in 0..16u64 {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i % 14) as u32),
                800,
                mid + Duration::minutes(9 * i),
                Duration::hours(3), // expires well before trace end
            ),
        });
    }
    for q in 0..40u64 {
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(15 + 8 * q),
            requester: NodeId(((q * 3 + 1) % 14) as u32),
            data: DataId(q % 16),
            constraint: Duration::hours(2), // queries expire mid-run too
        });
    }
    let cfg = IntentionalConfig {
        ncl_count: 3,
        ..IntentionalConfig::default()
    };
    let sim_cfg = SimConfig {
        seed: 28,
        ..SimConfig::default()
    };
    assert_equivalent(&trace, &cfg, &events, &sim_cfg);
}
