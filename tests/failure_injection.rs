//! Failure injection: starved links, impossible buffers, hostile
//! workloads. The stack must degrade gracefully, never panic or
//! over-commit resources.

use dtn_coop_cache::cache::experiment::build_scheme;
use dtn_coop_cache::cache::NetworkSetup;
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::prelude::*;
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;

fn trace(seed: u64) -> ContactTrace {
    SyntheticTraceBuilder::new(12)
        .duration(Duration::days(1))
        .target_contacts(3_000)
        .seed(seed)
        .build()
}

fn cfg() -> ExperimentConfig {
    ExperimentConfig {
        ncl_count: 2,
        mean_data_lifetime: Duration::hours(6),
        mean_data_size: 1 << 20,
        buffer_range: (8 << 20, 16 << 20),
        ..ExperimentConfig::default()
    }
}

/// Runs a scheme with a custom SimConfig through the standard two-phase
/// protocol.
fn run_with_sim_config(
    trace: &ContactTrace,
    kind: SchemeKind,
    config: &ExperimentConfig,
    sim_config: SimConfig,
) -> dtn_coop_cache::sim::Metrics {
    let scheme = build_scheme(kind, config);
    let mut sim = Simulator::new(trace, scheme, sim_config);
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..trace.node_count() as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0,
        path_refresh: None,
    });
    let mut events = Vec::new();
    for i in 0..6u64 {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i % 12) as u32),
                1 << 20,
                mid + Duration::minutes(i),
                Duration::hours(8),
            ),
        });
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::hours(1),
            requester: NodeId(((i + 6) % 12) as u32),
            data: DataId(i),
            constraint: Duration::hours(8),
        });
    }
    sim.add_workload(events);
    sim.run_to_end();
    sim.metrics().clone()
}

#[test]
fn one_byte_per_second_links_starve_all_schemes() {
    // With 1 B/s links, a 1 MiB item can never cross a contact; every
    // scheme must end with zero satisfied data queries and many
    // rejected transfers — and must not panic.
    let trace = trace(1);
    for kind in SchemeKind::ALL {
        let m = run_with_sim_config(
            &trace,
            kind,
            &cfg(),
            SimConfig {
                bandwidth_bytes_per_sec: 1,
                query_size_bytes: 16, // queries still tiny enough to move
                ..SimConfig::default()
            },
        );
        assert_eq!(
            m.queries_satisfied, 0,
            "{kind}: data crossed a starved link"
        );
    }
}

#[test]
fn buffers_smaller_than_any_item_disable_caching() {
    // Buffers of 10 bytes cannot hold 1 MiB items anywhere — including
    // at the data source, so nothing can ever be delivered.
    let trace = trace(2);
    for kind in SchemeKind::ALL {
        let m = run_with_sim_config(
            &trace,
            kind,
            &cfg(),
            SimConfig {
                buffer_range: (10, 10),
                ..SimConfig::default()
            },
        );
        for s in &m.samples {
            assert_eq!(s.copies, 0, "{kind}: cached into a 10-byte buffer");
        }
    }
}

#[test]
fn queries_for_expired_data_fail_cleanly() {
    let trace = trace(3);
    let scheme = build_scheme(SchemeKind::Intentional, &cfg());
    let mut sim = Simulator::new(&trace, scheme, SimConfig::default());
    let mid = trace.midpoint();
    sim.run_until(mid);
    let capacities: Vec<u64> = (0..12u32).map(|n| sim.buffer_capacity(NodeId(n))).collect();
    let rt = sim.rate_table().clone();
    sim.scheme_mut().configure(&NetworkSetup {
        rate_table: &rt,
        now: mid,
        capacities,
        horizon: 3600.0,
        path_refresh: None,
    });
    sim.add_workload(vec![
        WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(0),
                NodeId(0),
                1000,
                mid + Duration::minutes(1),
                Duration::minutes(5), // expires almost immediately
            ),
        },
        WorkloadEvent::IssueQuery {
            at: mid + Duration::hours(2), // long after expiry
            requester: NodeId(5),
            data: DataId(0),
            constraint: Duration::hours(4),
        },
    ]);
    sim.run_to_end();
    assert_eq!(sim.metrics().queries_satisfied, 0);
}

#[test]
fn empty_trace_second_half_is_harmless() {
    // All contacts packed into the first half: the workload phase sees
    // no contacts at all.
    let contacts: Vec<_> = SyntheticTraceBuilder::new(8)
        .duration(Duration::hours(6))
        .target_contacts(500)
        .seed(4)
        .build()
        .contacts()
        .to_vec();
    let trace = ContactTrace::new(8, contacts, Duration::days(2));
    let report = run_experiment(&trace, SchemeKind::Intentional, &cfg(), 1);
    // Queries can only self-satisfy (requester happens to be a caching
    // node at issue time — impossible without contacts), so expect 0.
    assert_eq!(report.metrics.queries_satisfied, 0);
}
