//! Conservation of the windowed flight recorder on an audited run.
//!
//! A [`Telemetry`] recorder tee'd onto the probe layer folds the event
//! stream into fixed simulation-time windows. Folding must lose
//! nothing: summing every window has to reproduce the engine's
//! [`Metrics`] totals *exactly* — strict equality, not approximation —
//! and agree with an independently recording [`RecordingProbe`] fed the
//! identical stream. The run is fully audited so the totals being
//! conserved are themselves invariant-checked.

use std::cell::RefCell;
use std::rc::Rc;

use dtn_coop_cache::cache::intentional::{IntentionalConfig, IntentionalScheme};
use dtn_coop_cache::cache::{CachingScheme, NetworkSetup};
use dtn_coop_cache::core::ids::{DataId, NodeId};
use dtn_coop_cache::core::time::{Duration, Time};
use dtn_coop_cache::sim::engine::{SimConfig, Simulator, WorkloadEvent};
use dtn_coop_cache::sim::message::DataItem;
use dtn_coop_cache::sim::probe::{RecordingProbe, TeeProbe};
use dtn_coop_cache::sim::telemetry::{Telemetry, TelemetryConfig};
use dtn_coop_cache::trace::synthetic::SyntheticTraceBuilder;
use dtn_coop_cache::trace::trace::ContactTrace;

const NODES: usize = 24;
const SEED: u64 = 5;

fn workload(trace: &ContactTrace) -> Vec<WorkloadEvent> {
    let mid = trace.midpoint();
    let items = 16u64;
    let mut events = Vec::new();
    for i in 0..items {
        events.push(WorkloadEvent::GenerateData {
            item: DataItem::new(
                DataId(i),
                NodeId((i * 5 % NODES as u64) as u32),
                1_200,
                mid + Duration::minutes(12 * i),
                Duration::hours(20),
            ),
        });
    }
    for q in 0..80u64 {
        events.push(WorkloadEvent::IssueQuery {
            at: mid + Duration::minutes(45 + 11 * q),
            requester: NodeId(((q * 7 + 3) % NODES as u64) as u32),
            data: DataId(q * q % items),
            constraint: Duration::hours(8),
        });
    }
    events
}

#[test]
fn window_sums_reproduce_metrics_totals_on_an_audited_run() {
    let trace = SyntheticTraceBuilder::new(NODES)
        .duration(Duration::days(2))
        .target_contacts(7_000)
        .seed(SEED)
        .build();
    let mid = trace.midpoint();
    let end = Time(trace.duration().as_secs());

    let scheme = IntentionalScheme::new(IntentionalConfig {
        ncl_count: 4,
        ..IntentionalConfig::default()
    });
    let mut sim = Simulator::new(
        &trace,
        scheme,
        SimConfig {
            buffer_range: (40_000, 60_000),
            seed: SEED,
            audit: true,
            epoch_interval: Some(Duration::hours(6)),
            ..SimConfig::default()
        },
    );

    // Probes from t=0: the capture covers warm-up and measurement, so
    // every counter the engine ever bumps is in some window.
    let recorder = Rc::new(RefCell::new(RecordingProbe::new()));
    let telemetry = Rc::new(RefCell::new(Telemetry::new(&TelemetryConfig::spanning(
        Time(0),
        Duration(end.0),
        20,
        4,
    ))));
    sim.set_probe(Box::new(TeeProbe::new(
        Box::new(Rc::clone(&recorder)),
        Box::new(Rc::clone(&telemetry)),
    )));

    sim.run_until(mid);
    let capacities: Vec<u64> = (0..NODES as u32)
        .map(|n| sim.buffer_capacity(NodeId(n)))
        .collect();
    let rate_table = sim.rate_table().clone();
    let setup = NetworkSetup {
        rate_table: &rate_table,
        now: mid,
        capacities,
        horizon: 7_200.0,
        path_refresh: None,
    };
    sim.scheme_mut().configure(&setup);
    sim.add_workload(workload(&trace));
    sim.run_to_end();

    let audit = sim.audit_report().expect("audit was enabled");
    assert!(audit.is_clean(), "audit violations: {}", audit.summary());

    drop(sim.take_probe());
    let probe = Rc::try_unwrap(recorder)
        .expect("probe handle back")
        .into_inner();
    let telemetry = Rc::try_unwrap(telemetry)
        .expect("telemetry handle back")
        .into_inner();
    let m = sim.metrics();
    let t = telemetry.totals();

    // The run actually exercised the counters being conserved.
    assert!(m.queries_issued > 0 && m.queries_satisfied > 0);
    assert!(m.bytes_transmitted > 0);
    assert!(
        telemetry.windows().iter().filter(|w| !w.is_empty()).count() > 1,
        "fold degenerated into one window"
    );

    // Strict conservation against the engine metrics.
    assert_eq!(t.queries_issued, m.queries_issued);
    assert_eq!(t.deliveries, m.queries_satisfied);
    assert_eq!(t.delay_sum_secs, m.total_delay_secs);
    assert_eq!(t.duplicate_deliveries, m.duplicate_deliveries);
    assert_eq!(t.late_deliveries, m.late_deliveries);
    assert_eq!(t.data_injected, m.data_generated);
    assert_eq!(t.bytes_transmitted, m.bytes_transmitted);
    assert_eq!(t.transfers_rejected, m.transfers_rejected);
    assert_eq!(t.contacts_lost, m.contacts_lost);

    // And against the independently recording probe.
    assert_eq!(t.contacts, probe.count("contact_begin"));
    assert_eq!(t.ncl_load, probe.count("query_at_central"));
    assert_eq!(t.replacements, probe.count("replacement_evicted"));
    assert_eq!(t.epochs, probe.count("epoch_fired"));
    assert_eq!(t.oracle_rebuilds, probe.count("oracle_rebuilt"));
    let (_, recomputes, hits) = probe.oracle_counters();
    assert_eq!((t.oracle_recomputes, t.oracle_hits), (recomputes, hits));
}
