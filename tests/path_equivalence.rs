//! Differential test: the allocation-free incremental path engine must
//! be indistinguishable from the retained naive reference.
//!
//! `shortest_paths` grows per-node hypoexponential accumulators along
//! the search tree and evaluates candidate weights with `extended_cdf`;
//! `shortest_paths_naive` clones owned paths and re-evaluates the full
//! CDF from scratch on every relaxation. Both are exact label-setting
//! searches over the same weight function, and the accumulator is
//! constructed so that incremental and batch evaluation run identical
//! floating-point operations — so weights must agree to the last bit
//! (asserted here with a 1e-12 band and an exact route comparison).

use dtn_coop_cache::core::graph::ContactGraph;
use dtn_coop_cache::core::ids::NodeId;
use dtn_coop_cache::core::path::{shortest_paths, shortest_paths_naive};

use proptest::prelude::*;

/// Builds a graph from an arbitrary edge list, skipping self-loops.
fn graph_from_edges(n: usize, edges: &[(u32, u32, f64)]) -> ContactGraph {
    let mut g = ContactGraph::new(n);
    for &(a, b, r) in edges {
        let (a, b) = (a % n as u32, b % n as u32);
        if a != b {
            g.set_rate(NodeId(a), NodeId(b), r);
        }
    }
    g
}

/// Compares the optimized search against the naive reference for every
/// destination: same reachability, same route, same weight.
fn assert_equivalent(g: &ContactGraph, source: NodeId, horizon: f64) -> Result<(), String> {
    let table = shortest_paths(g, source, horizon);
    let naive = shortest_paths_naive(g, source, horizon);
    for dest in g.nodes() {
        let optimized = table.path_to(dest);
        let reference = naive[dest.index()].as_ref();
        match (optimized, reference) {
            (None, None) => {
                if table.weight_to(dest) != 0.0 {
                    return Err(format!(
                        "unreachable n{dest} has nonzero weight {}",
                        table.weight_to(dest)
                    ));
                }
            }
            (Some(p), Some(r)) => {
                if p.nodes() != r.nodes() {
                    return Err(format!(
                        "route to n{dest} differs: {:?} vs {:?}",
                        p.nodes(),
                        r.nodes()
                    ));
                }
                let w_opt = table.weight_to(dest);
                let w_ref = r.weight(horizon);
                if (w_opt - w_ref).abs() > 1e-12 {
                    return Err(format!("weight to n{dest} differs: {w_opt} vs {w_ref}"));
                }
                // Lazily reconstructed paths must reproduce the cached
                // weight exactly (batch CDF over the same rate order).
                if p.weight(horizon) != w_opt {
                    return Err(format!(
                        "reconstructed weight {} != cached {w_opt} for n{dest}",
                        p.weight(horizon)
                    ));
                }
            }
            (a, b) => {
                return Err(format!(
                    "reachability to n{dest} differs: optimized {:?} vs naive {:?}",
                    a.map(|p| p.nodes().to_vec()),
                    b.map(|p| p.nodes().to_vec())
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn line_graph_is_equivalent() {
    let mut g = ContactGraph::new(6);
    for i in 0..5u32 {
        g.set_rate(NodeId(i), NodeId(i + 1), 1e-3 * f64::from(i + 1));
    }
    assert_equivalent(&g, NodeId(0), 5000.0).unwrap();
    assert_equivalent(&g, NodeId(3), 5000.0).unwrap();
}

#[test]
fn disconnected_components_are_equivalent() {
    let mut g = ContactGraph::new(7);
    g.set_rate(NodeId(0), NodeId(1), 2e-3);
    g.set_rate(NodeId(1), NodeId(2), 3e-3);
    g.set_rate(NodeId(4), NodeId(5), 1e-2);
    assert_equivalent(&g, NodeId(0), 2000.0).unwrap();
    assert_equivalent(&g, NodeId(4), 2000.0).unwrap();
    assert_equivalent(&g, NodeId(6), 2000.0).unwrap();
}

#[test]
fn clustered_rates_are_equivalent() {
    // Near-identical rates exercise the perturbation fallback of the
    // accumulator; prefix-stability must keep both searches in lockstep.
    let base = 1.0 / 700.0;
    let mut g = ContactGraph::new(5);
    g.set_rate(NodeId(0), NodeId(1), base);
    g.set_rate(NodeId(1), NodeId(2), base * (1.0 + 1e-9));
    g.set_rate(NodeId(2), NodeId(3), base);
    g.set_rate(NodeId(0), NodeId(4), base * (1.0 - 1e-10));
    g.set_rate(NodeId(4), NodeId(3), base);
    assert_equivalent(&g, NodeId(0), 3000.0).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Randomized graphs of up to 24 nodes: the optimized engine must
    /// produce the naive reference's routes and weights everywhere.
    #[test]
    fn random_graphs_are_equivalent(
        n in 2usize..24,
        edges in prop::collection::vec((0u32..24, 0u32..24, 1e-6f64..1e-1), 1..80),
        horizon in 50.0f64..1e6,
        source in 0u32..24,
    ) {
        let g = graph_from_edges(n, &edges);
        let source = NodeId(source % n as u32);
        if let Err(message) = assert_equivalent(&g, source, horizon) {
            prop_assert!(false, "{}", message);
        }
    }
}
