//! Differential guarantees of the city-scale engine.
//!
//! Two equivalences keep the streaming/sparse fast paths honest:
//!
//! - [`SyntheticTraceBuilder::stream`] must yield exactly the contact
//!   sequence `build()` materializes — same seed, same contacts, same
//!   order (proptest over builder configurations, plus a large-N
//!   time-ordering regression through the sampled pair-selection path);
//! - [`select_central_nodes_scoped`] must equal the global
//!   [`select_central_nodes`] bit for bit when the partition is a
//!   single community, and at multi-community scale its metric
//!   distribution must stay as skewed as §IV-B expects.

use dtn_coop_cache::core::graph::{ContactGraph, CsrGraph, Topology};
use dtn_coop_cache::core::ncl::{
    label_propagation_communities, metric_skew, scoped_metrics, select_central_nodes,
    select_central_nodes_scoped, CommunityPartition,
};
use dtn_coop_cache::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming and materialized generation are the same generator:
    /// for any builder configuration up to 200 nodes and any of the
    /// pluggable per-pair contact processes, `stream()` yields
    /// `build()`'s contact vector element for element.
    #[test]
    fn stream_equals_build(
        nodes in 2usize..=200,
        seed in 0u64..1_000,
        communities in 1usize..=5,
        target in 200u64..3_000,
        burstiness in 1.0f64..4.0,
        process_idx in 0usize..ContactProcessKind::ALL.len(),
    ) {
        let builder = SyntheticTraceBuilder::new(nodes)
            .duration(Duration::days(1))
            .target_contacts(target)
            .communities(communities.min(nodes))
            .burstiness(burstiness)
            .contact_process(ContactProcessKind::ALL[process_idx])
            .seed(seed);
        let built = builder.build();
        let streamed: Vec<_> = builder.stream().collect();
        prop_assert_eq!(built.contacts(), &streamed[..]);
    }
}

/// Large populations take the sampled (Miller–Hagberg) pair-selection
/// path instead of the exact `C(N,2)` sweep; the merged stream must
/// still be globally time-ordered and in-bounds.
#[test]
fn large_population_stream_is_time_ordered() {
    let builder = SyntheticTraceBuilder::new(5_000)
        .duration(Duration::hours(12))
        .target_contacts(60_000)
        .communities(10)
        .edge_density(10.0 / 4_999.0)
        .seed(11);
    let duration = Duration::hours(12).as_secs();
    let mut count = 0u64;
    let mut last_start = Time(0);
    for c in builder.stream() {
        assert!(c.start >= last_start, "stream went back in time");
        assert!(c.start < Time(duration), "contact starts past the end");
        assert!(c.end > c.start, "empty contact");
        assert!(c.a < c.b, "contact endpoints not normalized");
        assert!(c.b.index() < 5_000, "node out of range");
        last_start = c.start;
        count += 1;
    }
    assert!(
        (30_000..=120_000).contains(&count),
        "calibration way off target: {count} contacts"
    );
}

/// A deterministic sparse graph: spanning chain plus hashed extra
/// edges, so the scoped-vs-global comparison sees varied topologies
/// without pulling an RNG into the test crate.
fn random_graph(n: usize, extra_edges: usize, seed: u64) -> ContactGraph {
    let mut g = ContactGraph::new(n);
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in 1..n as u32 {
        let rate = 1e-4 + (next() % 1_000) as f64 * 1e-6;
        g.set_rate(NodeId(i - 1), NodeId(i), rate);
    }
    for _ in 0..extra_edges {
        let a = (next() % n as u64) as u32;
        let b = (next() % n as u64) as u32;
        if a != b {
            let rate = 1e-4 + (next() % 1_000) as f64 * 1e-6;
            g.set_rate(NodeId(a), NodeId(b), rate);
        }
    }
    g
}

/// With one community and no hop bound, the scoped sweep must reduce to
/// the global §IV selection exactly — same nodes, same metric bits.
#[test]
fn scoped_selection_matches_global_on_single_community() {
    for (n, extras, seed) in [(24usize, 40usize, 1u64), (60, 150, 5), (120, 400, 9)] {
        let g = random_graph(n, extras, seed);
        let partition = CommunityPartition::single(n);
        for k in [1, 3, 8] {
            let global = select_central_nodes(&g, k, 7_200.0);
            let scoped = select_central_nodes_scoped(&g, &partition, k, 7_200.0, None);
            assert_eq!(global.len(), scoped.len(), "n={n} k={k}");
            for (a, b) in global.iter().zip(&scoped) {
                assert_eq!(a.node, b.node, "n={n} k={k}: selection diverged");
                assert_eq!(
                    a.metric.to_bits(),
                    b.metric.to_bits(),
                    "n={n} k={k}: metric bits diverged at {:?}",
                    a.node
                );
            }
        }
    }
}

/// At multi-community scale the scoped metric distribution must keep
/// the paper's skew ("few nodes contact many others and act as the
/// communication hubs", §IV-B): the central picks concentrate well
/// above the median node.
#[test]
fn scoped_metrics_stay_skewed_at_community_scale() {
    let trace = SyntheticTraceBuilder::new(1_200)
        .duration(Duration::days(1))
        .target_contacts(30_000)
        .communities(6)
        .community_boost(6.0)
        .edge_density(12.0 / 1_199.0)
        .seed(4)
        .build();
    let now = Time(trace.duration().as_secs());
    let table = trace.rate_table(now);
    let g = CsrGraph::from_rate_table(&table, now);
    assert!(g.node_count() == 1_200);
    let partition = label_propagation_communities(&g, 16);
    assert!(
        partition.count() > 1,
        "label propagation collapsed to one community"
    );
    let scores = scoped_metrics(&g, &partition, 7_200.0, Some(3));
    let skew = metric_skew(&scores);
    assert!(
        skew.max_over_median > 1.5,
        "scoped metric distribution lost its skew: {skew:?}"
    );
}
